// Command lotsnode runs ONE node of a LOTS cluster as its own OS
// process — the deployment model of the paper's testbed, where each
// machine hosts one DSM process. A launcher (cmd/lotslaunch, or
// lotsbench -exp multiproc) spawns N of these and coordinates them
// over stdin/stdout with the control protocol of internal/wire:
//
//	lotsnode -id 2 -nodes 4 -transport udp -app sor -problem 32
//
//	stdout <- hello  {node, bound transport address}
//	stdin  -> peers  {all N addresses, rank order}
//	stdout <- ready  (after the barrier-0 join handshake)
//	stdout <- stats  (periodic, with -stats-interval: named counter values)
//	stdout <- log    (with -log-frames: each log line, relayed)
//	stdout <- digest {final shared-state digest, stats}
//
// Observability: -metrics addr serves Prometheus text metrics (every
// stats counter plus per-epoch protocol phase timings) at /metrics
// for the life of the process; in launcher mode the process then holds
// after its digest until stdin EOF so the launcher can take a final
// scrape. -tls-cert/-tls-key/-tls-ca bring the TCP links up with
// per-node certificates under a fleet CA (see cmd/lotslaunch -tls).
//
// With -app recov the node runs the checkpoint/recovery epoch workload
// instead of a Fig. 8 application: -ckpt-root enables barrier-time
// incremental checkpoints, each epoch is announced to the launcher
// with an epoch frame (the rank-kill chaos hook), and -recover resumes
// from the newest commonly restorable checkpoint after a gang restart.
//
// With -addrs the address list is static and no launcher is needed:
// the node binds its own slot, joins, runs, and prints human-readable
// results — the mode for launching a cluster by hand:
//
//	for i in 0 1 2 3; do
//	  lotsnode -id $i -nodes 4 -transport tcp \
//	    -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -app me -problem 16384 &
//	done; wait
//
// Logs go to stderr; stdout is reserved for the control protocol (or
// the human-readable summary in -addrs mode). Exit codes: 0 success,
// 1 runtime failure (join, application, digest), 2 bad configuration.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	lots "repro"
	"repro/internal/apps"
	"repro/internal/disk"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/stats/phases"
	"repro/internal/trace"
	tpt "repro/internal/transport"
	"repro/internal/wire"
)

// flightRing is the rank's trace ring once tracing is live; the
// watchdog and the SIGQUIT handler race the main goroutine's
// assignment, hence the atomic. When tracing is off it stays nil and
// the flight recorder is silent.
var flightRing atomic.Pointer[trace.Ring]

// flightTailEvents is how many trailing trace events the flight
// recorder dumps on failure — enough to see the epoch leading up to
// the crash without flooding the log.
const flightTailEvents = 64

// dumpFlight writes the flight-recorder tail to stderr (the node log),
// delimited so a launcher can scan it out of the log file.
func dumpFlight() {
	if r := flightRing.Load(); r != nil {
		r.DumpTail(os.Stderr, flightTailEvents)
	}
}

// ctrlMu serializes every control frame written to stdout: the main
// goroutine (hello/ready/digest), the stats ticker, and the log relay
// all write frames, and an interleaved frame would desync the
// launcher's decoder.
var ctrlMu sync.Mutex

func writeCtrl(c wire.Ctrl) error {
	ctrlMu.Lock()
	defer ctrlMu.Unlock()
	return wire.WriteCtrl(os.Stdout, c)
}

// ctrlLogWriter relays each log line as a CtrlLog frame (in addition
// to stderr, which log keeps via MultiWriter). The log package calls
// Write once per line.
type ctrlLogWriter struct{ id int }

func (w ctrlLogWriter) Write(p []byte) (int, error) {
	line := strings.TrimRight(string(p), "\n")
	writeCtrl(wire.Ctrl{Kind: wire.CtrlLog, Node: uint16(w.id), Log: line}) //nolint:errcheck // best-effort relay; stderr still has the line
	return len(p), nil
}

// statsCtrl snapshots the handle's counters and phase totals into one
// CtrlStats frame: counter names are the canonical stats field names,
// phase totals ride as phase_<name>_ns / phase_<name>_events entries.
func statsCtrl(id int, h *lots.NodeHandle) wire.Ctrl {
	fields := h.Stats().Fields()
	sts := make([]wire.CtrlStat, 0, len(fields)+2*int(phases.NumKinds))
	for _, f := range fields {
		sts = append(sts, wire.CtrlStat{Name: f.Name, Val: f.Value})
	}
	ns, events := h.Phases().Totals()
	var epoch uint32
	if eps := h.Phases().Epochs(); len(eps) > 0 {
		epoch = eps[len(eps)-1].Epoch
	}
	for _, k := range phases.Kinds() {
		sts = append(sts,
			wire.CtrlStat{Name: "phase_" + k.String() + "_ns", Val: ns[k]},
			wire.CtrlStat{Name: "phase_" + k.String() + "_events", Val: events[k]})
	}
	return wire.Ctrl{Kind: wire.CtrlStats, Node: uint16(id), Epoch: epoch, Stats: sts}
}

func main() {
	var (
		id        = flag.Int("id", -1, "this node's rank (0-based)")
		nodes     = flag.Int("nodes", 0, "cluster size")
		transport = flag.String("transport", "udp", "interconnect: udp or tcp")
		bind      = flag.String("bind", "", "bind address override (default: this rank's -addrs entry, or an ephemeral loopback port)")
		addrs     = flag.String("addrs", "", "static comma-separated address list (rank order); empty = learn peers from the launcher over stdin")
		app       = flag.String("app", "sor", "application: me, lu, sor, rx, recov")
		problem   = flag.Int("problem", 32, "problem size (me/rx: keys; lu/sor: matrix dimension; recov: words per row)")
		sorIters  = flag.Int("sor-iters", 4, "sor: red-black iteration pairs")
		rows      = flag.Int("rows", 4, "recov: shared matrix rows")
		epochs    = flag.Int("epochs", 6, "recov: workload epochs to run")
		ckptRoot  = flag.String("ckpt-root", "", "recov: checkpoint root directory (enables barrier-time checkpoints)")
		resume    = flag.Bool("recover", false, "recov: resume from the checkpoints under -ckpt-root instead of starting fresh")
		stallAt   = flag.Int("stall-at", -1, "recov: freeze forever upon entering this epoch, mid-write — the launcher's deterministic SIGKILL window (fresh runs only)")
		seed      = flag.Int64("seed", 42, "deterministic input seed (me/lu/rx)")
		dmm       = flag.Int("dmm", 0, "per-node DMM area bytes (0 = library default)")
		chaos     = flag.Int64("chaos", 0, "non-zero enables seeded fault injection; this node's schedule uses the per-rank convention RankChaosSeed(seed, id)")
		remote    = flag.Bool("remote-swap", false, "spill local-disk overflow to rank (id+1)%nodes via the remote-swap extension (self-asserts at least one spill)")
		diskCap   = flag.Int64("disk", 0, "this node's simulated local disk capacity in bytes (0 = library default)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "abort if the run has not finished in this long (0 = no watchdog)")
		metrics   = flag.String("metrics", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9300); launcher mode holds the process open after the digest until stdin EOF so the launcher can take a final scrape")
		statsIvl  = flag.Duration("stats-interval", 0, "stream a stats control frame to the launcher at this period (launcher mode only; 0 = off)")
		logFrames = flag.Bool("log-frames", false, "relay each log line to the launcher as a control frame, in addition to stderr (launcher mode only)")
		tracePath = flag.String("trace", "", "enable causal protocol tracing and write this rank's Chrome trace-event JSON to this file before the digest")
		tlsCert   = flag.String("tls-cert", "", "this node's PEM certificate (requires -tls-key and -tls-ca; TCP only)")
		tlsKey    = flag.String("tls-key", "", "this node's PEM private key")
		tlsCA     = flag.String("tls-ca", "", "the fleet CA certificate peers are verified against")
	)
	flag.Parse()
	log.SetFlags(log.Lmicroseconds)
	log.SetPrefix(fmt.Sprintf("lotsnode[%d]: ", *id))

	cfg := lots.DefaultConfig(max(*nodes, 1))
	switch *transport {
	case "udp":
		cfg.Transport = lots.TransportUDP
	case "tcp":
		cfg.Transport = lots.TransportTCP
	default:
		fatalConfig(fmt.Errorf("unknown transport %q (want udp or tcp)", *transport))
	}
	if *dmm != 0 {
		cfg.DMMSize = *dmm
	}
	if *chaos != 0 {
		// Per-rank seed convention: every process derives its own
		// decorrelated-but-deterministic schedule from the launcher's
		// cluster seed. The final digests must still be byte-identical
		// to a clean run — chaos may only cost retransmissions.
		cc := lots.DefaultChaos(lots.RankChaosSeed(*chaos, *id))
		cfg.Chaos = &cc
	}
	if *diskCap != 0 {
		capBytes := *diskCap
		cfg.Store = func(int) disk.Store { return disk.NewSimStore(capBytes) }
	}
	cfg.Trace = *tracePath != ""
	recov := *app == "recov"
	var appName harness.AppName
	if recov {
		if *ckptRoot == "" {
			fatalConfig(fmt.Errorf("-app recov requires -ckpt-root"))
		}
		if *stallAt >= 0 && *resume {
			fatalConfig(fmt.Errorf("-stall-at only applies to fresh (non -recover) runs"))
		}
		cfg.Recovery = &lots.RecoveryOpts{Root: *ckptRoot, Buddy: true, Resume: *resume}
	} else {
		if *resume || *ckptRoot != "" || *stallAt >= 0 {
			fatalConfig(fmt.Errorf("-recover/-ckpt-root/-stall-at only apply to -app recov"))
		}
		var err error
		if appName, err = harness.ParseApp(*app); err != nil {
			fatalConfig(err)
		}
	}
	if *nodes < 1 || *id < 0 || *id >= *nodes {
		fatalConfig(fmt.Errorf("node id %d / cluster size %d out of range", *id, *nodes))
	}
	static := *addrs != ""
	var peerList []string
	if static {
		peerList = strings.Split(*addrs, ",")
		if err := lots.ValidatePeerAddrs(peerList, *nodes); err != nil {
			fatalConfig(err)
		}
		cfg.Addrs = peerList
	}
	cfg.Nodes = *nodes
	if static && (*statsIvl > 0 || *logFrames) {
		fatalConfig(fmt.Errorf("-stats-interval and -log-frames need a launcher (no -addrs)"))
	}
	if (*tlsCert != "") != (*tlsKey != "") || (*tlsCert != "") != (*tlsCA != "") {
		fatalConfig(fmt.Errorf("-tls-cert, -tls-key and -tls-ca must be given together"))
	}
	if *tlsCert != "" {
		tc, err := tpt.LoadNodeTLS(*tlsCert, *tlsKey, *tlsCA)
		if err != nil {
			fatalConfig(err)
		}
		cfg.TLS = tc
	}
	if *logFrames {
		// Each log line still lands on stderr (the local log file); the
		// relay gives the launcher's fleet view a live copy.
		log.SetOutput(io.MultiWriter(os.Stderr, ctrlLogWriter{id: *id}))
	}
	var wd *time.Timer
	if *timeout > 0 {
		// A peer process dying mid-barrier would otherwise park this
		// process forever inside a blocked RPC; the watchdog turns that
		// into a loud, bounded failure the launcher can attribute. It is
		// stopped explicitly the moment the run has succeeded — not via
		// defer, which would leave it armed through h.Close's flush and
		// fail a run that finished just inside the deadline.
		wd = time.AfterFunc(*timeout, func() {
			fail(*id, static, fmt.Errorf("watchdog: run exceeded %v (peer died mid-barrier?)", *timeout))
		})
	}

	h, err := lots.BindNodeAt(cfg, *id, *bind)
	if err != nil {
		fatalConfig(err)
	}
	defer h.Close()
	log.Printf("bound %s on %s", *transport, h.LocalAddr())
	if ring := h.Trace(); ring != nil {
		flightRing.Store(ring)
		// SIGQUIT dumps the flight-recorder tail to the node log. The
		// launcher sends it to the survivors when a peer dies, so the
		// protocol state leading up to the casualty lands in every log.
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		go func() {
			for range sigq {
				dumpFlight()
			}
		}()
	}

	if *metrics != "" {
		// The observability surface: every counter plus the per-epoch
		// protocol phase ring, scrape-safe while the run is hot (the
		// handler snapshots; it never touches live atomics directly).
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatalConfig(fmt.Errorf("metrics listener: %w", err))
		}
		mux := stats.NewMetricsMux(*id, h.Stats, h.Phases())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", ln.Addr())
	}

	if !static {
		// Phase 1: report the bound address; phase 2: learn the peers.
		if err := writeCtrl(wire.Ctrl{Kind: wire.CtrlHello, Node: uint16(*id), Addr: h.LocalAddr()}); err != nil {
			fail(*id, static, fmt.Errorf("hello: %w", err))
		}
		c, err := wire.ReadCtrl(os.Stdin)
		if err != nil {
			fail(*id, static, fmt.Errorf("reading peers frame: %w", err))
		}
		if c.Kind != wire.CtrlPeers {
			fail(*id, static, fmt.Errorf("expected peers frame, got %v", c.Kind))
		}
		peerList = c.Addrs
		if err := lots.ValidatePeerAddrs(peerList, *nodes); err != nil {
			fail(*id, static, err)
		}
	}

	// Barrier-0 join: returns only when every rank has checked in.
	if err := h.Join(peerList); err != nil {
		fail(*id, static, err)
	}
	log.Printf("joined %d-node cluster", *nodes)
	if !static {
		// WallNS timestamps the ready frame: the launcher brackets the
		// round trip on its own clock and derives this rank's offset for
		// the merged trace timeline.
		if err := writeCtrl(wire.Ctrl{Kind: wire.CtrlReady, Node: uint16(*id), WallNS: time.Now().UnixNano()}); err != nil {
			fail(*id, static, fmt.Errorf("ready: %w", err))
		}
	}

	// Stream periodic stats frames to the launcher's fleet view. The
	// ticker stops (and is drained) before the digest frame, so the
	// launcher never sees a stats frame after the final one below.
	var stopStats func()
	if *statsIvl > 0 {
		done, finished := make(chan struct{}), make(chan struct{})
		go func() {
			defer close(finished)
			t := time.NewTicker(*statsIvl)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if err := writeCtrl(statsCtrl(*id, h)); err != nil {
						return
					}
				}
			}
		}()
		stopStats = func() { close(done); <-finished }
	}

	var (
		simTime  time.Duration
		digest   string
		resumeEp int
	)
	start := time.Now()
	err = h.Run(func(n *lots.Node) {
		if *remote {
			n.EnableRemoteSwap((n.ID() + 1) % n.N())
		}
		if recov {
			// Announce each workload epoch on the control pipe: the
			// launcher's rank-kill chaos cell SIGKILLs this process when
			// the fleet reaches its kill epoch. An epoch is announced only
			// after the previous epoch's checkpoints (and buddy acks) are
			// durable, so the launcher can kill on it without losing state.
			onEpoch := func(ep int) {
				if static {
					log.Printf("entering epoch %d", ep)
					return
				}
				if err := writeCtrl(wire.Ctrl{Kind: wire.CtrlEpoch, Node: uint16(*id), Epoch: uint32(ep)}); err != nil {
					fail(*id, static, fmt.Errorf("epoch frame: %w", err))
				}
			}
			resumeEp, digest = harness.RunRecoveryNode(n, *rows, *problem, *epochs, *stallAt, onEpoch)
			return
		}
		simTime, digest = harness.RunAppDigest(apps.NewLotsBackend(n), appName, *problem, *sorIters, *seed)
	})
	if err != nil {
		fail(*id, static, err)
	}
	if *remote {
		// The flag is a smoke assertion, not a hint: a run that never
		// actually overflowed to the peer proves nothing about the
		// remote path and must fail loudly.
		if spills := h.Node().RemoteSpills(); spills == 0 {
			fail(*id, static, fmt.Errorf("remote-swap run finished without a single spill to the peer (disk=%d dmm=%d too large?)", *diskCap, cfg.DMMSize))
		} else {
			log.Printf("remote swap exercised: %d spills to rank %d", spills, (*id+1)%*nodes)
		}
	}
	if wd != nil {
		wd.Stop()
	}
	snap := h.Stats()
	log.Printf("%s done in %v wall: digest=%s msgs=%d bytes=%d",
		*app, time.Since(start).Round(time.Millisecond), digest, snap.MsgsSent, snap.BytesSent)

	if *tracePath != "" {
		// Export before the digest frame: the launcher collects trace
		// files as soon as every digest is in, so the file must be
		// complete by then.
		if err := exportTrace(h, *tracePath); err != nil {
			fail(*id, static, fmt.Errorf("trace export: %w", err))
		}
		log.Printf("trace: %d events to %s", h.Trace().Len(), *tracePath)
	}

	if static {
		fmt.Printf("node %d: app=%s problem=%d digest=%s msgs=%d bytes=%d\n",
			*id, *app, *problem, digest, snap.MsgsSent, snap.BytesSent)
		if recov {
			fmt.Printf("node %d: resumed at epoch %d, ckpts=%d skipped=%d rehomes=%d\n",
				*id, resumeEp, snap.Ckpts, snap.CkptSkipped, snap.Rehomes)
		}
	} else {
		if stopStats != nil {
			stopStats()
			// One final stats frame with the ticker quiesced, so the
			// launcher's last per-rank numbers are the complete run's.
			writeCtrl(statsCtrl(*id, h)) //nolint:errcheck // the digest write below reports a broken pipe
		}
		err = writeCtrl(wire.Ctrl{
			Kind: wire.CtrlDigest, Node: uint16(*id), Digest: digest,
			SimNS: int64(simTime), Msgs: snap.MsgsSent, Bytes: snap.BytesSent,
			Epoch: uint32(resumeEp), Ckpts: snap.Ckpts, CkptSkipped: snap.CkptSkipped, Rehomes: snap.Rehomes,
		})
		if err != nil {
			fail(*id, static, fmt.Errorf("digest: %w", err))
		}
		if *metrics != "" {
			// Hold for the launcher's final scrape: the digest frame is
			// out but the metrics endpoint must stay up until the launcher
			// is done with it. Stdin EOF (the launcher closing our pipe)
			// is the release.
			_, _ = io.Copy(io.Discard, os.Stdin)
		}
	}
}

// exportTrace writes the rank's trace ring as Chrome trace-event JSON.
func exportTrace(h *lots.NodeHandle, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.Trace().Export(f); err != nil {
		f.Close() //nolint:errcheck // the export error wins
		return err
	}
	return f.Close()
}

// fail reports a runtime failure on the control channel (so the
// launcher can attribute it) and exits 1. With tracing live it first
// dumps the flight-recorder tail to the node log — the protocol events
// leading up to the failure.
func fail(id int, static bool, err error) {
	log.Print(err)
	dumpFlight()
	if !static {
		writeCtrl(wire.Ctrl{Kind: wire.CtrlError, Node: uint16(id), Err: err.Error()}) //nolint:errcheck // exiting anyway
	}
	os.Exit(1)
}

// fatalConfig reports a configuration error and exits 2.
func fatalConfig(err error) {
	fmt.Fprintln(os.Stderr, "lotsnode:", err)
	os.Exit(2)
}
