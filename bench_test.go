// Package lots_test's benchmarks regenerate the paper's evaluation (§4): one benchmark
// per figure panel and table, plus the ablations of DESIGN.md. Each
// reports the deterministic simulated cluster time as "sim-ms" — the
// quantity corresponding to the paper's measured seconds — alongside
// Go's wall-clock ns/op (which measures this host, not the modelled
// 2004 cluster).
//
//	go test -bench=. -benchmem
//
// Mapping to the paper:
//
//	BenchmarkFig8/*        -> Figure 8 (ME, LU, SOR, RX x {JIAJIA, LOTS, LOTS-x})
//	BenchmarkOverhead/*    -> §4.2 large-object-space overhead (LOTS vs LOTS-x)
//	BenchmarkAccessCheck   -> §4.2 20-25 ns access check measurement
//	BenchmarkViewCost      -> View API redesign: element-wise vs span views (DESIGN.md)
//	BenchmarkTable1/*      -> Table 1 platform sweep (scaled; sim-ms extrapolates x64)
//	BenchmarkMaxSpace      -> §4.3 free-disk exhaustion (scaled)
//	BenchmarkAblation*     -> DESIGN.md ablation index
package lots_test

import (
	"testing"

	lots "repro"
	"repro/internal/harness"
	"repro/internal/platform"
)

func benchCell(b *testing.B, spec harness.RunSpec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SimTime.Seconds()*1e3, "sim-ms")
		b.ReportMetric(float64(r.Totals.MsgsSent), "msgs")
		b.ReportMetric(float64(r.Totals.BytesSent), "wire-B")
	}
}

// BenchmarkFig8 regenerates Figure 8, one sub-benchmark per
// (application, system) pair at the mid-size problem with 4 processes.
func BenchmarkFig8(b *testing.B) {
	prof := platform.PIV2GFedora()
	problems := map[harness.AppName]int{
		harness.AppME:  65536,
		harness.AppLU:  64,
		harness.AppSOR: 64,
		harness.AppRX:  65536,
	}
	for _, app := range harness.AllApps() {
		for _, sys := range []harness.System{harness.SysJIAJIA, harness.SysLOTS, harness.SysLOTSX} {
			b.Run(string(app)+"/"+string(sys), func(b *testing.B) {
				benchCell(b, harness.RunSpec{
					System: sys, App: app, Problem: problems[app],
					Procs: 4, Platform: prof,
				})
			})
		}
	}
}

// BenchmarkOverhead regenerates the §4.2 overhead comparison.
func BenchmarkOverhead(b *testing.B) {
	prof := platform.PIV2GFedora()
	problems := map[harness.AppName]int{
		harness.AppME: 65536, harness.AppLU: 64,
		harness.AppSOR: 64, harness.AppRX: 262144,
	}
	for _, app := range harness.AllApps() {
		b.Run(string(app), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := harness.OverheadSweep(
					map[harness.AppName]int{app: problems[app],
						harness.AppME: problems[harness.AppME], harness.AppLU: problems[harness.AppLU],
						harness.AppSOR: problems[harness.AppSOR], harness.AppRX: problems[harness.AppRX]},
					4, prof)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.App == app {
						b.ReportMetric(100*r.Overhead, "overhead-%")
					}
				}
			}
		})
	}
}

// BenchmarkAccessCheck measures the per-access status check on a
// resident, clean object — the operation the paper times at 20-25 ns on
// a 2 GHz Pentium IV (this Go runtime pays mutex costs the C++ runtime
// did not; the simulated model charges the paper's figure).
func BenchmarkAccessCheck(b *testing.B) {
	c, err := lots.NewCluster(lots.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	errc := make(chan error, 1)
	done := make(chan struct{})
	err = nil
	go func() {
		errc <- c.Run(func(n *lots.Node) {
			a := lots.Alloc[int32](n, 1024)
			a.Set(0, 1)
			b.ResetTimer()
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += a.Get(i & 1023)
			}
			_ = sink
			close(done)
		})
	}()
	<-done
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkViewCost compares the two access paths of the public API on
// the identical striped workload: element-wise Ptr.Get/Set (one lock +
// one check per element) against pinned zero-copy span views (one lock,
// one check, one pin per span). The `view` cell's sim-ms should run
// several times below `elem`'s with identical msgs; `lotsbench -exp
// viewcost` self-asserts the >=3x bar.
func BenchmarkViewCost(b *testing.B) {
	prof := platform.PIV2GFedora()
	const (
		words  = 8192
		rounds = 2
		passes = 64
		procs  = 2
	)
	for i := 0; i < b.N; i++ {
		r, err := harness.ViewCost(words, rounds, passes, procs, prof)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Elem.SimTime.Seconds()*1e3, "elem-sim-ms")
		b.ReportMetric(r.View.SimTime.Seconds()*1e3, "view-sim-ms")
		b.ReportMetric(float64(r.Elem.Checks), "elem-checks")
		b.ReportMetric(float64(r.View.Checks), "view-checks")
		b.ReportMetric(r.SimRatio(), "sim-ratio-x")
	}
}

// BenchmarkTable1 regenerates Table 1 (scaled 64x; sim-ms extrapolates
// linearly back to the paper's 1114/976/142 second rows).
func BenchmarkTable1(b *testing.B) {
	for _, spec := range harness.PaperTable1Rows() {
		spec := spec
		b.Run(spec.Platform.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := harness.RunTable1(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.SimTime.Seconds()*1e3, "sim-ms")
				b.ReportMetric(r.FullSimTime.Seconds(), "fullscale-s")
				b.ReportMetric(float64(r.BytesToDisk), "disk-B")
			}
		})
	}
}

// BenchmarkMaxSpace regenerates the §4.3 capacity exhaustion at 1/256
// of the Xeon servers' 117.77 GB free disk.
func BenchmarkMaxSpace(b *testing.B) {
	capacity := platform.XeonSMP().DiskFreeBytes >> 8
	for i := 0; i < b.N; i++ {
		r, err := harness.RunMaxSpaceWithCapacity(16<<20, capacity)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ReachedBytes)/(1<<20), "space-MB")
		b.ReportMetric(float64(r.Objects), "objects")
	}
}

// BenchmarkAblationProtocol compares the mixed coherence protocol with
// its pure variants (§3.4).
func BenchmarkAblationProtocol(b *testing.B) {
	prof := platform.PIV2GFedora()
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationProtocol(4, prof)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SimTime.Seconds()*1e3, r.Variant+"-sim-ms")
		}
	}
}

// BenchmarkAblationDiff compares per-field timestamps with accumulated
// diff chains (§3.5, Figure 7).
func BenchmarkAblationDiff(b *testing.B) {
	prof := platform.PIV2GFedora()
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationDiff(4, prof)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.DiffB), r.Variant+"-B")
		}
	}
}

// BenchmarkAblationEvict compares LRU+pinning with FIFO eviction (§3.3).
func BenchmarkAblationEvict(b *testing.B) {
	prof := platform.PIV2GFedora()
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationEvict(prof)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SimTime.Seconds()*1e3, r.Variant+"-sim-ms")
		}
	}
}

// BenchmarkAblationRunBarrier compares the event-only run_barrier with
// the full barrier (§3.6).
func BenchmarkAblationRunBarrier(b *testing.B) {
	prof := platform.PIV2GFedora()
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationRunBarrier(4, prof)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SimTime.Seconds()*1e3, r.Variant+"-sim-ms")
		}
	}
}
