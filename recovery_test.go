package lots_test

// Kill-cell conformance for the checkpoint/recovery subsystem: a rank
// dies mid-epoch, the fleet gang-restarts from barrier-time
// checkpoints, and the resumed run must end byte-identical to an
// uninterrupted run of the plain protocol — on every transport, clean
// and under seeded chaos, with intact stores, a wiped store (buddy
// re-homing), and a degraded N-1 continue.

import (
	"fmt"
	"sync"
	"testing"

	lots "repro"
	"repro/internal/harness"
)

// recoverySpec is the pinned base scenario for the kill cells.
func recoverySpec() harness.RecoverySpec {
	return harness.RecoverySpec{
		Procs: 4, Rows: 4, Words: 16, Epochs: 6,
		KillRank: 2, KillEpoch: 3,
	}
}

// TestRecoveryRestart is the core scenario on the deterministic mem
// transport: same-size restart from intact stores.
func TestRecoveryRestart(t *testing.T) {
	res, err := harness.RecoveryCost(recoverySpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assert(); err != nil {
		t.Fatal(err)
	}
	if res.Resumed.Msgs >= res.Clean.Msgs {
		t.Logf("note: resumed run sent %d msgs vs clean %d (recovery overhead)", res.Resumed.Msgs, res.Clean.Msgs)
	}
}

// TestRecoveryKillCellMatrix runs the kill-and-recover scenario over
// the {mem, udp, tcp} x {clean, chaos} matrix with pinned seeds; every
// cell must resume at the same epoch and reproduce the oracle bytes.
func TestRecoveryKillCellMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-cell matrix is not short")
	}
	type cell struct {
		name  string
		kind  lots.TransportKind
		chaos int64
	}
	cells := []cell{
		{"mem", lots.TransportMem, 0},
		{"mem+chaos", lots.TransportMem, 42},
		{"udp", lots.TransportUDP, 0},
		{"udp+chaos", lots.TransportUDP, 42},
		{"tcp", lots.TransportTCP, 0},
		{"tcp+chaos", lots.TransportTCP, 42},
	}
	digests := make([]string, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			spec := recoverySpec()
			spec.Transport = c.kind
			spec.ChaosSeed = c.chaos
			res, err := harness.RecoveryCost(spec)
			if err != nil {
				t.Errorf("%s: %v", c.name, err)
				return
			}
			if err := res.Assert(); err != nil {
				t.Errorf("%s: %v", c.name, err)
				return
			}
			digests[i] = res.Resumed.Digest
		}(i, c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < len(cells); i++ {
		if digests[i] != digests[0] {
			t.Errorf("cell %s digest differs from %s", cells[i].name, cells[0].name)
		}
	}
}

// TestRecoveryWipedStoreRehomes destroys the dead rank's checkpoint
// directory before the restart: its chain must come back from the
// buddy replica, counted as re-homes.
func TestRecoveryWipedStoreRehomes(t *testing.T) {
	spec := recoverySpec()
	spec.WipeKilled = true
	res, err := harness.RecoveryCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assert(); err != nil {
		t.Fatal(err)
	}
	if res.Resumed.Rehomes == 0 {
		t.Fatal("wiped store restored without any re-home")
	}
}

// TestRecoveryDegradedContinue restarts with N-1 ranks: the dead
// rank's identity is orphaned and its objects are re-homed onto a
// survivor; the workload's values are fleet-size independent, so the
// bytes still match the oracle.
func TestRecoveryDegradedContinue(t *testing.T) {
	for _, wipe := range []bool{false, true} {
		spec := recoverySpec()
		spec.Degraded = true
		spec.WipeKilled = wipe
		res, err := harness.RecoveryCost(spec)
		if err != nil {
			t.Fatalf("wipe=%v: %v", wipe, err)
		}
		if err := res.Assert(); err != nil {
			t.Fatalf("wipe=%v: %v", wipe, err)
		}
	}
}

// TestRecoveryFreshStartWhenNoCheckpoints: a fleet resumed against an
// empty checkpoint root must agree on a fresh start (Recover returns
// 0) and complete the full run normally.
func TestRecoveryFreshStartWhenNoCheckpoints(t *testing.T) {
	const procs, words, epochs = 3, 12, 4
	cfg := lots.DefaultConfig(procs)
	cfg.Recovery = &lots.RecoveryOpts{Root: t.TempDir(), Buddy: true, Resume: true}
	c, err := lots.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	digests := make([]string, procs)
	err = c.Run(func(n *lots.Node) {
		arr := lots.Alloc[int32](n, words)
		if resume := n.Recover(); resume != 0 {
			panic(fmt.Sprintf("node %d: Recover on empty root returned %d, want 0", n.ID(), resume))
		}
		for ep := 0; ep < epochs; ep++ {
			lo, hi := n.ID()*words/procs, (n.ID()+1)*words/procs
			for i := lo; i < hi; i++ {
				arr.Set(i, int32(ep*100+i))
			}
			n.Barrier()
		}
		var b []byte
		for i := 0; i < words; i++ {
			b = fmt.Appendf(b, "%d ", arr.Get(i))
		}
		digests[n.ID()] = string(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q < procs; q++ {
		if digests[q] != digests[0] {
			t.Fatalf("node %d diverged after fresh start", q)
		}
	}
	want := ""
	for i := 0; i < words; i++ {
		want += fmt.Sprintf("%d ", int32((epochs-1)*100+i))
	}
	if digests[0] != want {
		t.Fatalf("fresh-start run produced %q, want %q", digests[0], want)
	}
}

// TestRecoveryCheckpointsIncremental pins the zero-byte property on an
// undisturbed run: with recovery on, a read-mostly workload's
// checkpoint stream must elide most segments.
func TestRecoveryCheckpointsIncremental(t *testing.T) {
	res, err := harness.RecoveryCost(recoverySpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assert(); err != nil {
		t.Fatal(err)
	}
	// One row is rewritten per workload epoch and each rank homes one
	// row, so the fleet-wide skip counts are exactly predictable. Each
	// workload epoch runs two barriers, hence two checkpoints: at the
	// write barrier the rows written in some earlier epoch but not this
	// one (written-1 of them, written = min(ep+1, rows)) are zero-byte
	// unchanged segments; at the verify barrier nothing was written, so
	// all `written` rows are skips. Never-written rows are zero-flag
	// segments, not skips. The `hot` array is republished with identical
	// bytes every epoch, so after its first checkpoint it always skips:
	// 1 skip in epoch 0 (verify barrier only), 2 per epoch after. The
	// first post-restart checkpoint is a full re-base and skips nothing,
	// but its verify barrier skips normally.
	spec := res.Spec
	writtenAt := func(ep int) int64 {
		if ep+1 > spec.Rows {
			return int64(spec.Rows)
		}
		return int64(ep + 1)
	}
	skipsAt := func(ep int) int64 {
		hot := int64(2)
		if ep == 0 {
			hot = 1
		}
		return 2*writtenAt(ep) - 1 + hot
	}
	var wantDoomed, wantResumed int64
	for ep := 0; ep < spec.KillEpoch; ep++ {
		wantDoomed += skipsAt(ep)
	}
	wantResumed = writtenAt(res.ResumeEpoch) + 1 // re-based write barrier: 0, its verify barrier skips all
	for ep := res.ResumeEpoch + 1; ep < spec.Epochs; ep++ {
		wantResumed += skipsAt(ep)
	}
	if res.Doomed.CkptSkipped != wantDoomed {
		t.Errorf("doomed run skipped %d segments, want %d", res.Doomed.CkptSkipped, wantDoomed)
	}
	if res.Resumed.CkptSkipped != wantResumed {
		t.Errorf("resumed run skipped %d segments, want %d (first post-restart checkpoint must re-base)",
			res.Resumed.CkptSkipped, wantResumed)
	}
}

// TestRecoveryLeasedKillCell layers the lease extension over the kill
// scenario: the read-mostly epochs must keep earning lease hits in
// both the doomed and the resumed runs, and recovery (which revokes
// every lease) must still reproduce the oracle bytes.
func TestRecoveryLeasedKillCell(t *testing.T) {
	spec := recoverySpec()
	spec.Leases = true
	res, err := harness.RecoveryCost(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assert(); err != nil {
		t.Fatal(err)
	}
	if res.Doomed.LeaseHits == 0 {
		t.Error("doomed leased run recorded no lease hits")
	}
	if res.Resumed.LeaseHits == 0 {
		t.Error("resumed leased run recorded no lease hits")
	}
}
