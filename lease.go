package lots

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/diffing"
	"repro/internal/object"
	"repro/internal/stats/phases"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Lease-based read-mostly coherence: revalidate instead of invalidate.
//
// The paper's barrier protocol invalidates every non-home copy of every
// object written in the epoch (§3.4), so a read-mostly object whose
// bytes the home never actually changed — a touched-but-identical SOR
// boundary row, a re-published RX prefix — still costs each reader a
// full fetch round-trip in the next epoch. The lease extension
// (Config.Leases) removes exactly those round-trips:
//
//   - Homes stamp each object with a monotonically increasing data
//     version (Control.Ver), bumped only when a synchronization event
//     actually mutates the object's bytes: a barrier diff or home-based
//     lock flush whose application changed words, a lock-grant diff
//     applied to the home's own copy, or the home's own epoch writes
//     (data != twin at barrier time).
//   - Fetch replies carry the version and, table capacity permitting, a
//     bounded read lease; the home remembers (object, cacher) in a
//     FIFO-evicted lease table.
//   - At barrier exit, instead of invalidating, a cacher batches one
//     TLeaseQ per home over its leased still-clean copies. The home
//     answers after its own reconciliation of that epoch has settled
//     the queried objects: version unchanged and lease record intact
//     means the copy is byte-identical to the home's and stays valid
//     with zero data transfer (LEASEOK); otherwise the cacher demotes
//     to the ordinary invalidate-and-fetch path.
//
// Safety invariant: within one home tenure, Ver bumps whenever the
// home's bytes change, so version equality implies byte equality.
// Across a home migration the records do not travel — the new home's
// table cannot know the old home's cachers, so every revalidation at a
// freshly migrated home misses and demotes. That locality is what
// makes the version comparison sound without migrating any lease
// state: a migration implicitly revokes all outstanding leases.
//
// A lease is a pure-read promise on the cacher too: the copy forfeits
// it the moment it stops being an exact fetched image — a local write
// (Ptr.Set or an RW view's write check), an applied lock-scope grant
// diff, or an invalidation all clear Control.Lease, so a copy that
// diverged from the home mid-epoch can never pass revalidation by
// accident even when the home's net change for the epoch was zero.

// leaseKey identifies one granted lease: object x cacher.
type leaseKey struct {
	id   object.ID
	node uint16
}

// leaseSlot is one FIFO position: the key plus the generation it was
// granted under, so a key's dead (dropped, then re-granted) slots are
// distinguishable from its live one.
type leaseSlot struct {
	key leaseKey
	gen uint64
}

// leaseTable is a home's bounded lease memory. Eviction is FIFO over
// grant order with lazy deletion: dropped keys leave dead slots behind
// and a re-grant appends a fresh slot, so each slot carries its grant
// generation and eviction only removes a lease whose generation still
// matches — a stale slot can never evict the key's newer lease. An
// evicted cacher's next revalidation simply demotes, so the bound
// trades re-fetches for memory, never correctness. Guarded by the
// node's big lock.
type leaseTable struct {
	cap  int
	gen  uint64
	m    map[leaseKey]uint64 // key -> generation of its live slot
	fifo []leaseSlot
}

func newLeaseTable(capacity int) *leaseTable {
	return &leaseTable{cap: capacity, m: make(map[leaseKey]uint64)}
}

// grant records a lease for k, evicting the oldest live entry if the
// table is full. Re-granting an existing lease renews it in place
// (keeping its original FIFO position).
func (t *leaseTable) grant(k leaseKey) {
	if _, live := t.m[k]; live {
		return
	}
	for len(t.m) >= t.cap && len(t.fifo) > 0 {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		if t.m[old.key] == old.gen {
			delete(t.m, old.key)
		}
	}
	t.gen++
	t.m[k] = t.gen
	t.fifo = append(t.fifo, leaseSlot{key: k, gen: t.gen})
	if len(t.fifo) > 2*t.cap {
		t.compact()
	}
}

// has reports whether k's lease is still recorded.
func (t *leaseTable) has(k leaseKey) bool {
	_, live := t.m[k]
	return live
}

// drop forgets k (demotion or revocation); k's FIFO slot goes dead.
func (t *leaseTable) drop(k leaseKey) { delete(t.m, k) }

// compact rewrites the FIFO without dead slots, so lazy deletion
// cannot grow it past 2*cap for long.
func (t *leaseTable) compact() {
	live := t.fifo[:0]
	for _, s := range t.fifo {
		if t.m[s.key] == s.gen {
			live = append(live, s)
		}
	}
	t.fifo = live
}

// len reports the live entry count (testing).
func (t *leaseTable) len() int { return len(t.m) }

// ---- Home side ----------------------------------------------------------

// serveLeaseQ answers a batched revalidation at the home. Like
// serveFetch it must gate on this node's own reconciliation progress: a
// verdict issued before the home has registered its barrier
// expectations, applied every diff it is owed for the queried object,
// and settled its own epoch writes could vouch for a version its
// reconciliation was about to bump — the stale-read divergence the
// adversarial conformance test drives at.
func (n *Node) serveLeaseQ(m wire.Message) {
	q, err := wire.DecodeLeaseQ(wire.NewReader(m.Payload))
	if err != nil {
		n.fatalf("lots: node %d: bad lease query: %v", n.id, err)
	}
	lc := n.svcClock(m)
	n.mu.Lock()
	// reconEpoch advances to E+1 once this node's exit processing for
	// barrier E has registered expectations and settled the home's own
	// version bumps; a query for epoch E waits for exactly that.
	for n.reconEpoch <= q.Epoch {
		n.cond.Wait()
	}
	reply := wire.LeaseReply{Items: make([]wire.LeaseVerdict, 0, len(q.Items))}
	for _, it := range q.Items {
		id := object.ID(it.ID)
		for n.pendingDiffs[id] > 0 {
			n.cond.Wait()
		}
		c := n.lookup(id)
		k := leaseKey{id: id, node: m.From}
		ok := n.cfg.Leases && c.Home == n.id && c.State != object.Invalid &&
			n.leaseTab.has(k) && c.Ver == it.Ver
		if !ok {
			n.leaseTab.drop(k)
		}
		// The verdict cannot predate the reconciliation diffs this home
		// applied for the epoch the requester is leaving.
		lc.MergeTo(time.Duration(c.ReconcileNS))
		reply.Items = append(reply.Items, wire.LeaseVerdict{ID: it.ID, OK: ok, Ver: c.Ver})
	}
	n.mu.Unlock()
	var w wire.Buffer
	reply.Encode(&w)
	n.reply(m, wire.TLeaseReply, w.Bytes(), lc.Now())
}

// leaseGrantLocked records a lease for a fetch served to requester and
// reports whether one was granted. Caller holds n.mu (serveFetch).
func (n *Node) leaseGrantLocked(c *object.Control, requester uint16) bool {
	if !n.cfg.Leases || int(requester) == n.id {
		return false
	}
	n.leaseTab.grant(leaseKey{id: c.ID, node: requester})
	n.ctr.LeasesGranted.Add(1)
	return true
}

// bumpVerOnSelfWritesLocked settles the home's own contribution to an
// object's data version at barrier time: if this node wrote the object
// in the epoch and the bytes actually moved against the epoch twin,
// the version bumps. It must run before reconEpoch advances (i.e.
// before any LEASEOK for this epoch can be issued). Caller holds n.mu.
func (n *Node) bumpVerOnSelfWritesLocked(c *object.Control) {
	if !c.WrittenInEpoch || c.Twin == nil || c.State == object.Invalid {
		return
	}
	if !bytes.Equal(n.objData(c), c.Twin) {
		c.Ver++
	}
}

// ---- Byte-change detection for diff application -------------------------

// stampedRunShadow snapshots the destination bytes every run of d
// covers, so the caller can detect whether applying d actually changed
// anything. Out-of-range runs snapshot nothing (Apply will reject
// them).
func stampedRunShadow(data []byte, d diffing.StampedDiff) [][]byte {
	out := make([][]byte, len(d.Runs))
	for i, r := range d.Runs {
		lo, hi := int(r.Off), int(r.Off)+len(r.Data)
		if lo >= len(data) || hi > len(data) {
			continue
		}
		out[i] = append([]byte(nil), data[lo:hi]...)
	}
	return out
}

// stampedRunsChanged reports whether the bytes under d's runs differ
// from the pre-apply shadow.
func stampedRunsChanged(data []byte, d diffing.StampedDiff, shadow [][]byte) bool {
	for i, r := range d.Runs {
		if shadow[i] == nil {
			continue
		}
		if !bytes.Equal(data[int(r.Off):int(r.Off)+len(shadow[i])], shadow[i]) {
			return true
		}
	}
	return false
}

// diffRunShadow / diffRunsChanged are the plain-diff analogues, used
// when a lock-grant diff lands on a home copy.
func diffRunShadow(data []byte, d diffing.Diff) [][]byte {
	out := make([][]byte, len(d.Runs))
	for i, r := range d.Runs {
		lo, hi := int(r.Off), int(r.Off)+len(r.Data)
		if lo >= len(data) || hi > len(data) {
			continue
		}
		out[i] = append([]byte(nil), data[lo:hi]...)
	}
	return out
}

func diffRunsChanged(data []byte, d diffing.Diff, shadow [][]byte) bool {
	for i, r := range d.Runs {
		if shadow[i] == nil {
			continue
		}
		if !bytes.Equal(data[int(r.Off):int(r.Off)+len(shadow[i])], shadow[i]) {
			return true
		}
	}
	return false
}

// ---- Cacher side --------------------------------------------------------

// leaseRevalidate runs the cacher half of the barrier-time protocol:
// collect this node's leased, still-clean copies of reconciled objects,
// send one batched TLeaseQ per (new) home, and return the set of
// objects whose leases held — those skip invalidation entirely. It
// must be called after this node's own barrier diffs were sent (a home
// cannot answer before the diffs it is owed arrive) and before the
// plan-application step that would otherwise invalidate the copies.
// Caller must NOT hold n.mu.
func (n *Node) leaseRevalidate(epoch uint32, plans []barrierPlan) map[object.ID]bool {
	if !n.cfg.Leases || n.cfg.Protocol.Barrier == BarrierUpdateBroadcast {
		return nil
	}
	revalAt := time.Now()
	defer func() { n.ph.Observe(epoch, phases.LeaseReval, time.Since(revalAt)) }()
	batches := make(map[int][]wire.LeaseQItem)
	n.mu.Lock()
	for _, p := range plans {
		if p.home == n.id {
			continue
		}
		c := n.lookup(p.id)
		if !c.Lease || c.State != object.Clean {
			continue
		}
		batches[p.home] = append(batches[p.home], wire.LeaseQItem{ID: uint64(p.id), Ver: c.Ver})
	}
	n.mu.Unlock()
	if len(batches) == 0 {
		return nil
	}
	homes := make([]int, 0, len(batches))
	for h := range batches {
		homes = append(homes, h)
	}
	sort.Ints(homes)
	kept := make(map[object.ID]bool)
	for _, home := range homes {
		var w wire.Buffer
		wire.LeaseQ{Epoch: epoch, Items: batches[home]}.Encode(&w)
		qtc := n.tr.Begin(trace.LeaseReval, epoch, uint64(len(batches[home])), wire.TraceCtx{})
		reply := n.rpcT(home, wire.TLeaseQ, w.Bytes(), qtc)
		n.tr.End(qtc)
		if reply.Type != wire.TLeaseReply {
			n.fatalf("lots: node %d: lease revalidation with node %d: reply %v", n.id, home, reply.Type)
		}
		rep, err := wire.DecodeLeaseReply(wire.NewReader(reply.Payload))
		if err != nil {
			n.fatalf("lots: node %d: bad lease reply from node %d: %v", n.id, home, err)
		}
		// Verdicts come back in request order (serveLeaseQ answers item
		// by item), so pair them by index — a shape mismatch is a
		// protocol error, not something to search around.
		if len(rep.Items) != len(batches[home]) {
			n.fatalf("lots: node %d: lease reply from node %d has %d verdicts for %d queries",
				n.id, home, len(rep.Items), len(batches[home]))
		}
		for i, it := range batches[home] {
			v := rep.Items[i]
			if v.ID != it.ID {
				n.fatalf("lots: node %d: lease reply from node %d out of order: verdict %d is for object %d, want %d",
					n.id, home, i, v.ID, it.ID)
			}
			if v.OK {
				kept[object.ID(it.ID)] = true
				n.ctr.LeaseHits.Add(1)
			} else {
				n.ctr.LeaseDemotes.Add(1)
			}
		}
	}
	return kept
}

// LeaseCount reports this node's live home-side lease table size
// (testing and diagnostics).
func (n *Node) LeaseCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaseTab.len()
}
