// Out-of-core: a shared object space larger than the DMM area.
//
// This is Table 1's workload (§4.3) in miniature: a two-node cluster
// allocates a 2-D array whose total size is 16x the DMM area, so the
// dynamic memory mapper must continuously swap row objects between the
// arena and the local-disk backing store. The example uses a REAL
// temp-file store, proving the spill path against the filesystem.
//
// Each row is filled and summed through a pinned row view: one access
// check and one map-in per row, with the pin holding the row resident
// against the mapper's eviction pressure while it is being touched.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"

	lots "repro"
	"repro/internal/apps"
	"repro/internal/disk"
	"repro/internal/platform"
)

func main() {
	const (
		nodes   = 2
		dmm     = 256 << 10 // 256 KB arena per node
		rows    = 256       // x 16 KB rows = 4 MB of shared objects
		rowInts = 4096
	)
	cfg := lots.DefaultConfig(nodes)
	cfg.Platform = platform.PIV2GFedora()
	cfg.DMMSize = dmm
	cfg.Store = func(node int) disk.Store {
		fs, err := disk.NewFileStore("", 0) // real temp-file backing store
		if err != nil {
			log.Fatal(err)
		}
		return fs
	}
	cluster, err := lots.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.Run(func(n *lots.Node) {
		res := apps.BigArray(apps.NewLotsBackend(n), apps.BigArrayConfig{
			Rows:    rows,
			RowInts: rowInts,
			Sweeps:  2,
		})
		fmt.Printf("node %d: verified sum %d\n", n.ID(), res.Sum)
	})
	if err != nil {
		log.Fatal(err)
	}

	t := cluster.Total()
	fmt.Printf("\nobject space: %d KB through a %d KB DMM area per node\n",
		rows*rowInts*4/1024, dmm/1024)
	fmt.Printf("map-ins: %d   swap-outs: %d   row views: %d\n", t.MapIns, t.SwapOuts, t.Views)
	fmt.Printf("disk: %d writes (%.1f MB), %d reads (%.1f MB) — real files\n",
		t.DiskWrites, float64(t.DiskWriteBytes)/(1<<20),
		t.DiskReads, float64(t.DiskReadBytes)/(1<<20))
	fmt.Printf("simulated cluster time: %v\n", cluster.SimTime())
}
