// SOR: the paper's red-black successive over-relaxation solver (§4.1)
// on a four-node LOTS cluster, with the per-protocol event counts that
// explain why the migrating-home protocol wins on this access pattern.
//
// The stencil runs on pinned row views (Matrix.RowView/RowViewRW): each
// relaxation statement opens its four rows with one access check per
// row, updates the destination against mapped memory, and releases —
// the statement-scope pinning of §3.3 as an API.
//
//	go run ./examples/sor
package main

import (
	"fmt"
	"log"

	lots "repro"
	"repro/internal/apps"
	"repro/internal/platform"
)

func main() {
	const (
		nodes = 4
		grid  = 64
		iters = 16
	)
	cfg := lots.DefaultConfig(nodes)
	cfg.Platform = platform.PIV2GFedora()
	cluster, err := lots.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.Run(func(n *lots.Node) {
		elapsed := apps.SOR(apps.NewLotsBackend(n), apps.SORConfig{N: grid, Iters: iters})
		fmt.Printf("node %d: relaxation time %v (simulated)\n", n.ID(), elapsed)
	})
	if err != nil {
		log.Fatal(err)
	}

	t := cluster.Total()
	fmt.Printf("\nSOR %dx%d, %d red-black iterations on %d nodes\n", grid, grid, iters, nodes)
	fmt.Printf("every row is written by one process only, so the mixed\n")
	fmt.Printf("protocol migrates each row's home to its writer:\n")
	fmt.Printf("  home migrations:    %d\n", t.HomeMigrates)
	fmt.Printf("  barrier diffs sent: %d (only multi-writer objects need them)\n", t.DiffsMade)
	fmt.Printf("  object fetches:     %d (read-shared slice-edge rows)\n", t.ObjFetches)
	fmt.Printf("  access checks:      %d over %d row views (one check per span, not per element)\n",
		t.AccessChecks, t.Views)
	fmt.Printf("simulated cluster time: %v\n", cluster.SimTime())
}
