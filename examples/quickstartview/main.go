// Quickstart (View edition): the same four-node cluster as
// examples/quickstart, but every inner loop runs on pinned zero-copy
// views — one access check and one pin per span instead of one lock +
// check per element. Compare the access-check counts printed at the
// end with the element-wise quickstart's.
//
//	go run ./examples/quickstartview
package main

import (
	"fmt"
	"log"

	lots "repro"
)

func main() {
	cfg := lots.DefaultConfig(4)
	cluster, err := lots.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.Run(func(n *lots.Node) {
		a := lots.Alloc[int32](n, 16)

		// One RW view covers the whole fill: a single write check and
		// twin, then direct writes into the mapped bytes.
		if n.ID() == 0 {
			n.Acquire(1)
			w := a.ViewRW(0, a.Len())
			for i := 0; i < w.Len(); i++ {
				w.Set(i, int32(i*i))
			}
			w.Release()
			n.Release(1)
		}

		n.Barrier()

		// One read view covers the whole sum: the coherence fetch (on
		// non-home nodes) happens once, at view creation.
		v := a.View(0, a.Len())
		sum := int32(0)
		for i := 0; i < v.Len(); i++ {
			sum += v.At(i)
		}
		fmt.Printf("node %d: sum of squares 0..15 = %d\n", n.ID(), sum)

		// Slice shares the parent's pin; CopyTo stages a span out.
		if n.ID() == 1 {
			tail := v.Slice(12, 16)
			buf := make([]int32, tail.Len())
			tail.CopyTo(buf)
			fmt.Printf("node 1: last squares %v\n", buf)
		}
		v.Release()
		n.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	t := cluster.Total()
	fmt.Printf("cluster simulated time: %v\n", cluster.SimTime())
	fmt.Printf("access checks: %d over %d spans (the element-wise quickstart pays one check per element)\n",
		t.AccessChecks, t.Views)
}
