// Rush Hour: breadth-first search over a sliding-block puzzle on a
// LOTS cluster — the kind of state-space search the paper's
// introduction motivates the large object space with ("an optimal
// solution to the Rush Hour problem": the BFS frontier can outgrow any
// single machine's memory, but LOTS spills it to disk transparently).
//
// Four nodes expand the frontier in parallel; each BFS level and each
// node's successor list is a shared object, sized through a DMM area
// deliberately smaller than the search data so the frontier pages
// through the backing store.
//
//	go run ./examples/rushhour
package main

import (
	"fmt"
	"log"

	lots "repro"
)

// A vehicle occupies `length` cells in a row (horizontal) or column
// (vertical); only its variable coordinate changes.
type vehicle struct {
	fixed      int // row if horizontal, column if vertical
	length     int
	horizontal bool
}

const boardSize = 6

// The puzzle: vehicle 0 is the red car on row 2; it exits when its
// right end reaches the board edge. A vertical truck blocks the exit
// lane and must move down first.
var vehicles = []vehicle{
	{fixed: 2, length: 2, horizontal: true},  // 0: red car, row 2
	{fixed: 2, length: 3, horizontal: false}, // 1: truck, column 2
	{fixed: 0, length: 2, horizontal: true},  // 2: car, row 0
	{fixed: 4, length: 3, horizontal: true},  // 3: truck, row 4
}

// initial positions (variable coordinate of each vehicle).
var initial = state{0, 0, 3, 1}

type state [4]int8

func encode(s state) int32 {
	v := int32(0)
	for i, p := range s {
		v |= int32(p) << (3 * i)
	}
	return v
}

func decode(v int32) state {
	var s state
	for i := range s {
		s[i] = int8((v >> (3 * i)) & 7)
	}
	return s
}

// occupied builds the board occupancy mask.
func occupied(s state) [boardSize][boardSize]bool {
	var grid [boardSize][boardSize]bool
	for i, veh := range vehicles {
		for k := 0; k < veh.length; k++ {
			if veh.horizontal {
				grid[veh.fixed][int(s[i])+k] = true
			} else {
				grid[int(s[i])+k][veh.fixed] = true
			}
		}
	}
	return grid
}

// successors returns every state reachable by sliding one vehicle one
// cell.
func successors(s state) []state {
	grid := occupied(s)
	var out []state
	for i, veh := range vehicles {
		pos := int(s[i])
		// Slide toward lower coordinates.
		if pos > 0 {
			r, c := veh.fixed, pos-1
			if !veh.horizontal {
				r, c = pos-1, veh.fixed
			}
			if !grid[r][c] {
				ns := s
				ns[i]--
				out = append(out, ns)
			}
		}
		// Slide toward higher coordinates.
		if pos+veh.length < boardSize {
			r, c := veh.fixed, pos+veh.length
			if !veh.horizontal {
				r, c = pos+veh.length, veh.fixed
			}
			if !grid[r][c] {
				ns := s
				ns[i]++
				out = append(out, ns)
			}
		}
	}
	return out
}

func solved(s state) bool {
	return int(s[0])+vehicles[0].length == boardSize
}

func main() {
	const (
		nodes    = 4
		capacity = 4096 // states per shared frontier/successor object
	)
	cfg := lots.DefaultConfig(nodes)
	cfg.DMMSize = 16 << 10 // deliberately tiny: the search pages to disk
	cluster, err := lots.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.Run(func(n *lots.Node) {
		me, p := n.ID(), n.N()
		frontier := lots.Alloc[int32](n, capacity)
		frontierLen := lots.Alloc[int32](n, 1)
		outs := make([]lots.Ptr[int32], p)
		outLens := make([]lots.Ptr[int32], p)
		for i := 0; i < p; i++ {
			outs[i] = lots.Alloc[int32](n, capacity)
			outLens[i] = lots.Alloc[int32](n, 1)
		}
		result := lots.Alloc[int32](n, 1) // solution depth, -1 while unsolved

		if me == 0 {
			frontier.Set(0, encode(initial))
			frontierLen.Set(0, 1)
			result.Set(0, -1)
		}
		n.Barrier()

		visited := map[int32]bool{encode(initial): true} // node 0 only
		for depth := 1; ; depth++ {
			// Expand this node's share of the frontier.
			flen := int(frontierLen.Get(0))
			var mine []int32
			for i := me; i < flen; i += p {
				for _, ns := range successors(decode(frontier.Get(i))) {
					mine = append(mine, encode(ns))
				}
			}
			if len(mine) > capacity {
				panic("successor object overflow")
			}
			if len(mine) > 0 {
				outs[me].SetN(0, mine)
			}
			outLens[me].Set(0, int32(len(mine)))
			n.Barrier()

			// Node 0 deduplicates and builds the next level.
			if me == 0 {
				var next []int32
				done := int32(-1)
				for q := 0; q < p && done < 0; q++ {
					cnt := int(outLens[q].Get(0))
					if cnt == 0 {
						continue
					}
					for _, enc := range outs[q].GetN(0, cnt) {
						if visited[enc] {
							continue
						}
						visited[enc] = true
						if solved(decode(enc)) {
							done = int32(depth)
							break
						}
						next = append(next, enc)
					}
				}
				if done < 0 && len(next) == 0 {
					done = -2 // exhausted: unsolvable
				}
				result.Set(0, done)
				if done < 0 {
					if len(next) > capacity {
						panic("frontier overflow")
					}
					frontier.SetN(0, next)
					frontierLen.Set(0, int32(len(next)))
				}
			}
			n.Barrier()
			if r := result.Get(0); r != -1 {
				if me == 0 {
					if r == -2 {
						fmt.Println("puzzle is unsolvable")
					} else {
						fmt.Printf("solved in %d moves (explored %d states)\n", r, len(visited))
					}
				}
				break
			}
		}
		n.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	t := cluster.Total()
	fmt.Printf("frontier paged through a 16 KB DMM area: %d map-ins, %d swap-outs\n",
		t.MapIns, t.SwapOuts)
}
