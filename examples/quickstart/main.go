// Quickstart: a four-node LOTS cluster sharing one array.
//
// Node 0 fills a shared array inside a critical section; after a
// barrier every node reads it back. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lots "repro"
)

func main() {
	cfg := lots.DefaultConfig(4)
	cluster, err := lots.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.Run(func(n *lots.Node) {
		// Collective allocation: every node executes this SPMD, so the
		// object ID agrees cluster-wide without communication.
		a := lots.Alloc[int32](n, 16)

		// A lock-guarded update from node 0 (scope consistency: the
		// next acquirer of lock 1 sees these writes).
		if n.ID() == 0 {
			n.Acquire(1)
			for i := 0; i < a.Len(); i++ {
				a.Set(i, int32(i*i))
			}
			n.Release(1)
		}

		// The barrier reconciles memory under the mixed protocol:
		// node 0 was the only writer, so the object's home migrates to
		// it and no data moves at all.
		n.Barrier()

		// Everyone reads; non-home nodes fetch the clean copy once.
		sum := int32(0)
		for i := 0; i < a.Len(); i++ {
			sum += a.Get(i)
		}
		fmt.Printf("node %d: sum of squares 0..15 = %d\n", n.ID(), sum)

		// Pointer arithmetic, like the paper's *(a+4) = 1.
		if n.ID() == 1 {
			p := a.Add(4)
			fmt.Printf("node 1: *(a+4) = %d\n", p.Deref())
		}
		n.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster simulated time: %v\n", cluster.SimTime())
}
