package lots

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diffing"
	"repro/internal/disk"
	"repro/internal/dmm"
	"repro/internal/object"
	"repro/internal/platform"
	"repro/internal/recovery"
	"repro/internal/stats"
	"repro/internal/stats/phases"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Node is one machine of the LOTS cluster. Its application goroutine
// runs the user's SPMD function; a dispatch goroutine plays the role of
// the SIGIO handler, servicing protocol requests from peers.
//
// All node state is guarded by mu (the original runtime is a single
// thread plus signal handlers; the big lock reproduces that atomicity).
type Node struct {
	id    int
	cfg   *Config
	ep    transport.Endpoint
	ctr   *stats.Counters
	clock *stats.SimClock
	prof  platform.Profile
	// ph records wall-clock protocol phase timings per epoch for the
	// observability surface; deliberately not the simulated clock.
	ph *phases.Ring
	// tr is the causal protocol event ring (Config.Trace). Nil when
	// tracing is off — every trace.Ring method is nil-safe, so the
	// instrumentation sites below never guard.
	tr *trace.Ring

	mu   sync.Mutex
	cond *sync.Cond // broadcast on barrier-diff application / epoch advance
	// curClock is the timeline charged by shared code paths (objData):
	// normally the node's application clock, temporarily redirected to
	// a per-request service timeline while a protocol handler runs
	// under mu. This keeps peer-service work off the application's
	// simulated time, so measurements are schedule-independent.
	curClock *stats.SimClock
	table    *object.Table
	mapper   *dmm.Mapper // nil when LargeObjectSpace is off (LOTS-x)
	store    disk.Store

	// Lock client state.
	knownVer map[uint16]uint32             // lock -> last version applied here
	scope    map[uint16]map[object.ID]bool // lock -> known scope set
	held     map[uint16]*csState           // currently held locks
	csStack  []uint16                      // acquisition order (innermost last)
	chains   map[object.ID]*diffing.Chain  // DiffAccumulate mode histories

	// Lock manager state, for locks this node manages (l % N == id).
	lmgr map[uint16]*lockMgr

	// Barrier client state.
	epoch   uint32
	rbEpoch uint32
	// pendingDiffs counts barrier diffs this node still expects as a
	// home in the current reconciliation; access waits on cond.
	pendingDiffs map[object.ID]int

	// Lease coherence state. leaseTab is this node's home-side lease
	// memory; reconEpoch is E+1 once this node's barrier-exit
	// processing for epoch E has registered diff expectations and
	// settled its own version bumps — the point from which it may
	// answer epoch-E lease revalidations (waited on via cond).
	leaseTab   *leaseTable
	reconEpoch uint32

	// Barrier manager state (node 0 only).
	bmgr *barrierMgr

	// Checkpoint/recovery state (Config.Recovery). rstore is the
	// rank's durable checkpoint store, opened on first use; ckptVers
	// remembers the data version last checkpointed per homed object so
	// unchanged objects cost no bytes; rmgr is the recovery
	// negotiation coordinator (node 0 only).
	rstore     *recovery.Store
	rstoreOnce sync.Once
	rstoreErr  error
	ckptVers   map[object.ID]uint32
	rmgr       *recoverMgr

	// RPC plumbing. dead is set when dispatch drains the table on
	// endpoint closure: an RPC registering after that point would wait
	// on a channel nothing will ever signal, so it must fail instead.
	reqSeq  atomic.Uint64
	pending struct {
		sync.Mutex
		m    map[uint64]chan wire.Message
		dead bool
	}

	closed atomic.Bool
}

// csState tracks one held critical section.
type csState struct {
	lock     uint16
	grantVer uint32
	written  map[object.ID]bool
	csTwins  map[object.ID][]byte // data snapshot at first write in this CS
}

func newNode(id int, cfg *Config, ep transport.Endpoint, store disk.Store,
	ctr *stats.Counters, clock *stats.SimClock, tr *trace.Ring) *Node {
	n := &Node{
		id:           id,
		cfg:          cfg,
		ep:           ep,
		ctr:          ctr,
		clock:        clock,
		tr:           tr,
		prof:         cfg.Platform,
		table:        object.NewTable(),
		store:        store,
		knownVer:     make(map[uint16]uint32),
		scope:        make(map[uint16]map[object.ID]bool),
		held:         make(map[uint16]*csState),
		chains:       make(map[object.ID]*diffing.Chain),
		lmgr:         make(map[uint16]*lockMgr),
		pendingDiffs: make(map[object.ID]int),
		leaseTab:     newLeaseTable(max(cfg.LeaseSlots, 1)),
		ph:           phases.NewRing(phases.DefaultWindow),
	}
	n.cond = sync.NewCond(&n.mu)
	n.curClock = clock
	if cfg.LargeObjectSpace {
		n.mapper = dmm.NewMapper(cfg.DMMSize, store, ctr)
		n.mapper.SetEvictPolicy(cfg.Protocol.Evict == EvictFIFO)
	}
	n.pending.m = make(map[uint64]chan wire.Message)
	if id == 0 {
		n.bmgr = newBarrierMgr(cfg.Nodes)
	}
	return n
}

// ID returns the node's cluster rank.
func (n *Node) ID() int { return n.id }

// N returns the cluster size.
func (n *Node) N() int { return n.cfg.Nodes }

// Stats returns the node's counters.
func (n *Node) Stats() *stats.Counters { return n.ctr }

// Phases returns the node's wall-clock protocol phase recorder.
func (n *Node) Phases() *phases.Ring { return n.ph }

// Trace returns the node's causal protocol event ring, or nil when
// Config.Trace is off (a nil ring is a valid no-op recorder).
func (n *Node) Trace() *trace.Ring { return n.tr }

func (n *Node) close() error {
	n.closed.Store(true)
	return n.ep.Close()
}

// fatalf aborts the application function; Cluster.Run converts the
// panic into an error. Runtime failures (disk full, protocol breakage)
// are unrecoverable mid-computation, matching the original's abort.
func (n *Node) fatalf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// ---- RPC plumbing -------------------------------------------------------

// replyBit marks a message as an RPC reply; without it a node's request
// to itself (e.g. node 0's own barrier arrival) would be mis-routed to
// its own pending-reply table.
const replyBit = uint64(1) << 63

// newReqID returns a cluster-unique request ID (rank in high bits).
func (n *Node) newReqID() uint64 {
	return uint64(n.id)<<48 | n.reqSeq.Add(1)
}

// send transmits a one-way message. at is the explicit causal
// timestamp for messages sent from a service timeline; 0 stamps the
// node's application clock.
func (n *Node) send(to int, typ wire.Type, reqID uint64, payload []byte, at time.Duration) {
	n.sendT(to, typ, reqID, payload, at, wire.TraceCtx{})
}

// sendT is send with a causal trace context stamped on the frame (the
// zero context costs zero wire bytes, so send delegates here freely).
func (n *Node) sendT(to int, typ wire.Type, reqID uint64, payload []byte, at time.Duration, tc wire.TraceCtx) {
	err := n.ep.Send(wire.Message{Type: typ, To: uint16(to), ReqID: reqID,
		SimTime: int64(at), Payload: payload, Trace: tc})
	if err != nil && !n.closed.Load() {
		n.fatalf("lots: send %v to node %d: %v", typ, to, err)
	}
}

// batchSender is the coalescing face an endpoint may offer (see
// transport.BatchingEndpoint): Defer queues a message for a batched
// per-peer flush, Flush ships everything pending. Protocol fan-out
// sites type-assert n.ep against it and fall back to serial sends.
type batchSender interface {
	Defer(m wire.Message) error
	Flush() error
}

// deferSend queues a one-way message on a coalescing endpoint; the
// caller must Flush (via the batchSender) before awaiting any reply.
func (n *Node) deferSend(bs batchSender, to int, typ wire.Type, reqID uint64, payload []byte) {
	n.deferSendT(bs, to, typ, reqID, payload, wire.TraceCtx{})
}

// deferSendT is deferSend with a trace context: batch entries carry
// full encoded messages, so the context survives coalescing.
func (n *Node) deferSendT(bs batchSender, to int, typ wire.Type, reqID uint64, payload []byte, tc wire.TraceCtx) {
	err := bs.Defer(wire.Message{Type: typ, To: uint16(to), ReqID: reqID, Payload: payload, Trace: tc})
	if err != nil && !n.closed.Load() {
		n.fatalf("lots: defer %v to node %d: %v", typ, to, err)
	}
}

// svcClock builds a service timeline starting at m's causal arrival.
func (n *Node) svcClock(m wire.Message) *stats.SimClock {
	c := &stats.SimClock{}
	c.MergeTo(transport.Arrival(n.prof, m))
	return c
}

// useClock redirects shared time charges to c until the returned
// function is called. Caller holds n.mu for the whole window.
func (n *Node) useClock(c *stats.SimClock) func() {
	prev := n.curClock
	n.curClock = c
	return func() { n.curClock = prev }
}

// rpc sends a request and blocks for the correlated reply, merging the
// simulated clock at receipt. The caller must NOT hold n.mu.
func (n *Node) rpc(to int, typ wire.Type, payload []byte) wire.Message {
	return n.rpcT(to, typ, payload, wire.TraceCtx{})
}

// rpcT is rpc with a causal trace context stamped on the request, so
// the serving rank can link its span to the caller's.
func (n *Node) rpcT(to int, typ wire.Type, payload []byte, tc wire.TraceCtx) wire.Message {
	id := n.newReqID()
	ch := make(chan wire.Message, 1)
	n.pending.Lock()
	if n.pending.dead {
		n.pending.Unlock()
		n.fatalf("lots: rpc %v to node %d: endpoint closed", typ, to)
	}
	n.pending.m[id] = ch
	n.pending.Unlock()
	n.sendT(to, typ, id, payload, 0, tc)
	reply, ok := <-ch, true
	if reply.Type == wire.TInvalid {
		ok = false
	}
	if !ok {
		n.fatalf("lots: rpc %v to node %d: endpoint closed", typ, to)
	}
	n.clock.MergeTo(transport.Arrival(n.prof, reply))
	return reply
}

// reply answers a request at the given service-timeline timestamp; the
// reply bit routes it to the requester's pending-RPC table rather than
// its request handler.
func (n *Node) reply(req wire.Message, typ wire.Type, payload []byte, at time.Duration) {
	n.send(int(req.From), typ, req.ReqID|replyBit, payload, at)
}

// dispatch is the node's message loop: replies are routed to waiting
// RPCs; requests are served in their own goroutines (so a handler that
// must wait — e.g. a fetch gated on in-flight barrier diffs — cannot
// stall the loop).
func (n *Node) dispatch() {
	for {
		m, ok := n.ep.Recv()
		if !ok {
			// Wake any still-pending RPCs with a zero message, and fail
			// RPCs that would register from now on.
			n.pending.Lock()
			n.pending.dead = true
			for id, ch := range n.pending.m {
				ch <- wire.Message{}
				delete(n.pending.m, id)
			}
			n.pending.Unlock()
			return
		}
		if m.ReqID&replyBit != 0 {
			id := m.ReqID &^ replyBit
			n.pending.Lock()
			ch, mine := n.pending.m[id]
			if mine {
				delete(n.pending.m, id)
			}
			n.pending.Unlock()
			if mine {
				ch <- m
				continue
			}
			// Stale reply (RPC abandoned); drop it.
			continue
		}
		go n.serve(m)
	}
}

// serve handles one protocol request. It merges the node clock to the
// message's causal arrival time first (the SIGIO handler runs on this
// machine's timeline).
func (n *Node) serve(m wire.Message) {
	defer func() {
		if r := recover(); r != nil && !n.closed.Load() {
			panic(r)
		}
	}()
	switch m.Type {
	case wire.TLockReq:
		n.serveLockReq(m)
	case wire.TLockFree:
		n.serveLockFree(m)
	case wire.TLockGrant:
		// Grants normally match a pending RPC; one can arrive after a
		// node aborted. Drop it.
	case wire.TBarrierArrive:
		n.serveBarrierArrive(m)
	case wire.TBarrierDiff:
		n.serveBarrierDiff(m)
	case wire.TObjFetchReq:
		n.serveFetch(m)
	case wire.TLeaseQ:
		n.serveLeaseQ(m)
	case wire.TRemoteSwapOut:
		n.serveRemoteSwapOut(m)
	case wire.TRemoteSwapIn:
		n.serveRemoteSwapIn(m)
	case wire.TCkptPut:
		n.serveCkptPut(m)
	case wire.TRehome:
		n.serveRehome(m)
	case wire.TRecoverArrive:
		n.serveRecoverArrive(m)
	case wire.TRecoverReady:
		n.serveRecoverReady(m)
	default:
		// Unknown requests are dropped; the requester's RPC would hang,
		// so this indicates a version mismatch — surface loudly.
		if !n.closed.Load() {
			n.fatalf("lots: node %d: unexpected message %v from %d", n.id, m.Type, m.From)
		}
	}
}

// ---- Object data access -------------------------------------------------

// objData returns the object's resident data, mapping it in (possibly
// swapping others out, possibly reading the local disk) when the large
// object space is enabled; with it disabled (LOTS-x) data lives on the
// Go heap permanently. Caller holds n.mu.
func (n *Node) objData(c *object.Control) []byte {
	if n.mapper != nil {
		wasMapped := c.Mapped
		data, err := n.mapper.Ensure(c)
		if err != nil {
			n.fatalf("lots: node %d: mapping object %d: %v", n.id, c.ID, err)
		}
		if !wasMapped {
			n.curClock.Advance(n.prof.CPU(mapInCost))
		}
		return data
	}
	if c.Heap == nil {
		c.Heap = make([]byte, c.Size)
	}
	return c.Heap
}

// largeSpaceExtra is the extra per-access CPU cost of the large object
// space support (mapping-state check + pinning timestamp), on the 2 GHz
// reference machine. The paper measures the total support overhead at
// 10-15% for access-heavy programs and <5% otherwise (§4.2).
const largeSpaceExtra = 2 // nanoseconds

// mapInCost is the CPU cost of one dynamic mapping operation (mmap
// bookkeeping, allocator search, table update) on the reference
// machine. Programs that churn objects through the DMM area (RX's
// buckets) pay it often; programs whose objects stay mapped (SOR's
// rows) barely see it — reproducing the 10-15%% vs <5%% split of §4.2.
const mapInCost = 10 * time.Microsecond

// chargeChecks accounts for the extra element accesses within a bulk
// span: the paper's C++ runtime overloads operators per element, so an
// n-element sweep performs n status checks (§4.2 counts ~1.5e9 checks
// for SOR-1024 on 4 processors). One check was already charged by
// accessCheck. Caller holds n.mu.
func (n *Node) chargeChecks(extra int) {
	if extra <= 0 {
		return
	}
	n.ctr.AccessChecks.Add(int64(extra))
	cost := n.prof.AccessCheckCost
	if n.cfg.LargeObjectSpace {
		cost += n.prof.CPU(largeSpaceExtra)
	}
	n.clock.Advance(time.Duration(int64(cost) * int64(extra)))
}

// accessCheck is the status check invoked before every shared object
// access (§3.3): a table lookup in the common case, a coherence fetch
// plus dynamic mapping otherwise. It returns the object's data, valid
// for reading. Caller holds n.mu; accessCheck may drop and retake it.
func (n *Node) accessCheck(c *object.Control) []byte {
	n.ctr.AccessChecks.Add(1)
	cost := n.prof.AccessCheckCost
	if n.cfg.LargeObjectSpace {
		cost += n.prof.CPU(largeSpaceExtra)
	}
	n.clock.Advance(cost)
	if c.State == object.Invalid {
		n.fetchObject(c)
	}
	data := n.objData(c)
	if n.mapper != nil {
		n.mapper.Touch(c)
	}
	return data
}

// writeCheck is accessCheck plus write detection: it creates the twin
// on the first write in an interval, marks the object dirty for the
// epoch and for any held lock scopes, and invalidates the disk copy.
// Caller holds n.mu.
func (n *Node) writeCheck(c *object.Control) []byte {
	data := n.accessCheck(c)
	if c.Twin == nil {
		c.Twin = diffing.MakeTwin(data)
		n.clock.Advance(n.prof.WordsCost(c.Words()))
	}
	c.State = object.Dirty
	c.WrittenInEpoch = true
	// A write forfeits any read lease: the copy is no longer the pure
	// fetched image the lease vouched for (RW views enter here too).
	c.Lease = false
	if n.mapper != nil {
		n.mapper.MarkDirty(c)
	}
	// Attribute the write to the innermost held critical section.
	if len(n.csStack) > 0 {
		l := n.csStack[len(n.csStack)-1]
		cs := n.held[l]
		if !cs.written[c.ID] {
			cs.written[c.ID] = true
			cs.csTwins[c.ID] = diffing.MakeTwin(data)
			c.MarkScopeLock(l)
			n.addScope(l, c.ID)
		}
	}
	return data
}

// viewEnter is the span entry protocol shared by the legacy Ptr
// accessors and the zero-copy View API: exactly one access check (plus
// twin creation and dirty marking for writes), then a DMM pin so the
// mapped bytes stay resident for the span's lifetime. RW entries also
// open a mutation window: fetch service for the object is deferred
// until viewExit, so peers can never receive a copy torn mid-write.
// Caller holds n.mu; the check may drop and retake it. Returns the
// object's mapped data.
func (n *Node) viewEnter(c *object.Control, rw bool) []byte {
	var data []byte
	if rw {
		data = n.writeCheck(c)
		c.RWViews++
	} else {
		data = n.accessCheck(c)
		c.ROViews++
	}
	if n.mapper != nil {
		n.mapper.Pin(c)
	}
	n.ctr.Views.Add(1)
	return data
}

// viewExit closes a span opened by viewEnter: the pin is dropped and
// protocol services parked on the open view are woken. Caller holds
// n.mu.
func (n *Node) viewExit(c *object.Control, rw bool) {
	if rw {
		if c.RWViews <= 0 {
			n.fatalf("lots: node %d: unbalanced RW view exit on object %d", n.id, c.ID)
		}
		c.RWViews--
	} else {
		if c.ROViews <= 0 {
			n.fatalf("lots: node %d: unbalanced read view exit on object %d", n.id, c.ID)
		}
		c.ROViews--
	}
	if c.RWViews == 0 && c.ROViews == 0 {
		n.cond.Broadcast() // wake services parked on the open-view window
	}
	if n.mapper != nil {
		n.mapper.Unpin(c)
	}
}

// addScope records obj in lock l's known scope set.
func (n *Node) addScope(l uint16, id object.ID) {
	s := n.scope[l]
	if s == nil {
		s = make(map[object.ID]bool)
		n.scope[l] = s
	}
	s[id] = true
}

// lookup resolves an object ID or aborts.
func (n *Node) lookup(id object.ID) *object.Control {
	c := n.table.Lookup(id)
	if c == nil {
		n.fatalf("lots: node %d: access to undeclared object %d", n.id, id)
	}
	return c
}

// applyScopeDiff applies a lock-scope update received with a grant. If
// the local copy is invalid the diff is deferred until the next fetch
// brings a base copy to apply it to. Caller holds n.mu.
func (n *Node) applyScopeDiff(c *object.Control, l uint16, ver uint32, d diffing.Diff) {
	if d.Empty() {
		return
	}
	if c.State == object.Invalid {
		c.PendingDiffs = append(c.PendingDiffs, object.PendingDiff{Lock: l, Ver: ver, Data: encodeDiff(d)})
		return
	}
	data := n.objData(c)
	var shadow [][]byte
	if n.trackVer() && c.Home == n.id {
		shadow = diffRunShadow(data, d)
	}
	if err := diffing.Apply(data, d); err != nil {
		n.fatalf("lots: node %d: applying scope diff to object %d: %v", n.id, c.ID, err)
	}
	// The copy now carries lock-scope updates the home's data version
	// knows nothing about: a cacher forfeits its lease (its bytes
	// diverged from the leased image), and a home whose bytes moved
	// must bump — the acquirer's copy already matches the grant, so a
	// later barrier diff may be a byte-level no-op that never bumps.
	c.Lease = false
	if shadow != nil && diffRunsChanged(data, d, shadow) {
		c.Ver++
	}
	if n.mapper != nil {
		n.mapper.MarkDirty(c)
	}
	n.stampDiffWords(c, l, ver, d)
	n.clock.Advance(n.prof.WordsCost(d.Bytes() / object.WordSize))
}

// stampDiffWords marks every word covered by d as last written at
// (l, ver), so this node can later serve on-demand diffs itself.
func (n *Node) stampDiffWords(c *object.Control, l uint16, ver uint32, d diffing.Diff) {
	stamps := c.EnsureStamps()
	for _, r := range d.Runs {
		for w := int(r.Off) / object.WordSize; w <= (int(r.Off)+len(r.Data)-1)/object.WordSize; w++ {
			if w < len(stamps) {
				stamps[w] = object.WordStamp{Ver: ver, Lock: l, Node: uint16(n.id), Epoch: n.epoch}
			}
		}
	}
}

// materializePendingLocked applies this node's deferred scope updates
// for c so that grants served from here reflect complete data. A node
// can hold pending diffs for an object it never touched (they arrived
// with a grant while the copy was invalid); if it then becomes the last
// releaser, serving from its per-word stamps alone would silently omit
// those words. Caller holds n.mu.
func (n *Node) materializePendingLocked(c *object.Control) {
	if len(c.PendingDiffs) == 0 {
		return
	}
	if c.State == object.Invalid {
		// fetchObject brings the base copy from the home and applies
		// the pending diffs on top (it drops and retakes n.mu).
		n.fetchObject(c)
		return
	}
	local := n.objData(c)
	for _, pd := range c.PendingDiffs {
		d, err := diffing.DecodeDiff(wire.NewReader(pd.Data))
		if err != nil {
			n.fatalf("lots: node %d: bad pending diff for object %d: %v", n.id, c.ID, err)
		}
		if err := diffing.Apply(local, d); err != nil {
			n.fatalf("lots: node %d: pending diff for object %d: %v", n.id, c.ID, err)
		}
		n.stampDiffWords(c, pd.Lock, pd.Ver, d)
	}
	if n.mapper != nil {
		n.mapper.MarkDirty(c)
	}
	c.PendingDiffs = nil
}

func encodeDiff(d diffing.Diff) []byte {
	var w wire.Buffer
	d.Encode(&w)
	return w.Bytes()
}

func decodeDiff(n *Node, p []byte) diffing.Diff {
	d, err := diffing.DecodeDiff(wire.NewReader(p))
	if err != nil {
		n.fatalf("lots: bad diff payload: %v", err)
	}
	return d
}

// ResetClock zeroes this node's simulated clock. The harness uses it at
// phase boundaries, e.g. to exclude ME's local sorting time from the
// measured merging time as the paper does (§4.1).
func (n *Node) ResetClock() { n.clock.Reset() }

// EvictAll swaps every mapped, unpinned object out to the backing
// store. It is used by capacity experiments ("every object is swapped
// out once", §4.3) and returns the first eviction error — notably
// disk.ErrNoSpace when the backing store fills.
func (n *Node) EvictAll() error {
	if n.mapper == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var firstErr error
	n.table.ForEach(func(c *object.Control) {
		if firstErr != nil || !c.Mapped || c.Pins > 0 {
			return
		}
		if err := n.mapper.Evict(c); err != nil {
			firstErr = err
		}
	})
	return firstErr
}

// StoreUsed reports the bytes currently held by this node's backing
// store (the shared object space consumed on its local disk).
func (n *Node) StoreUsed() int64 {
	if n.store == nil {
		return 0
	}
	return n.store.Used()
}

// SimNow returns this node's current simulated clock (for phase
// measurements).
func (n *Node) SimNow() time.Duration { return n.clock.Now() }
