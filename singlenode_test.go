package lots

// Single-rank bring-up: BindNode/Join host one node per NodeHandle the
// way one OS process would host it in a multi-process deployment. The
// tests here run several handles inside one test process — the real
// cross-process run lives in internal/harness's multiproc suite and
// cmd/lotslaunch — and cover the new configuration surface: bad node
// ids, duplicate addresses, mismatched peer counts.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats/phases"
)

// bringUpHandles binds n deferred handles, distributes the collected
// addresses, and joins them all (concurrently: Join blocks until every
// rank checks in at rank 0).
func bringUpHandles(t *testing.T, cfg Config) []*NodeHandle {
	t.Helper()
	hs := make([]*NodeHandle, cfg.Nodes)
	for i := range hs {
		h, err := BindNode(cfg, i)
		if err != nil {
			t.Fatalf("BindNode(%d): %v", i, err)
		}
		hs[i] = h
		t.Cleanup(h.Close)
	}
	addrs := make([]string, cfg.Nodes)
	for i, h := range hs {
		addrs[i] = h.LocalAddr()
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Nodes)
	for i, h := range hs {
		wg.Add(1)
		go func(i int, h *NodeHandle) {
			defer wg.Done()
			errs[i] = h.Join(addrs)
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Join(%d): %v", i, err)
		}
	}
	return hs
}

// runHandles drives fn on every handle concurrently (SPMD) and joins
// the per-rank errors, mirroring Cluster.Run.
func runHandles(hs []*NodeHandle, fn func(n *Node)) error {
	var wg sync.WaitGroup
	errs := make([]error, len(hs))
	for i, h := range hs {
		wg.Add(1)
		go func(i int, h *NodeHandle) {
			defer wg.Done()
			errs[i] = h.Run(fn)
		}(i, h)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func testSingleNodeCluster(t *testing.T, kind TransportKind) {
	const nodes, rounds, words = 3, 4, 16
	cfg := DefaultConfig(nodes)
	cfg.Transport = kind
	hs := bringUpHandles(t, cfg)
	digests := make([]string, nodes)
	var mu sync.Mutex
	err := runHandles(hs, func(n *Node) {
		arr := Alloc[int32](n, words)
		n.Barrier()
		for r := 0; r < rounds; r++ {
			n.Acquire(2)
			for i := 0; i < words; i++ {
				arr.Set(i, arr.Get(i)+1)
			}
			n.Release(2)
		}
		n.Barrier()
		want := int32(rounds * nodes)
		for i := 0; i < words; i++ {
			if got := arr.Get(i); got != want {
				panic(fmt.Sprintf("node %d: arr[%d] = %d, want %d", n.ID(), i, got, want))
			}
		}
		d := digestInts("counter", arr, words)
		mu.Lock()
		digests[n.ID()] = d
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < nodes; i++ {
		if digests[i] != digests[0] {
			t.Errorf("node %d digest differs:\n%s\nvs\n%s", i, digests[i], digests[0])
		}
	}
	// Every rank crossed barriers, so the phase recorder must have
	// wall-clock barrier-wait observations — the signal the fleet CI
	// job asserts per rank via /metrics.
	for i, h := range hs {
		_, events := h.Phases().Totals()
		if events[phases.BarrierWait] == 0 {
			t.Errorf("node %d recorded no barrier_wait phase events", i)
		}
	}
}

func TestSingleNodeClusterUDP(t *testing.T) { testSingleNodeCluster(t, TransportUDP) }
func TestSingleNodeClusterTCP(t *testing.T) { testSingleNodeCluster(t, TransportTCP) }

// TestSingleNodeRunError: a rank's panic surfaces as a *NodeError with
// the correct rank, both from NodeHandle.Run and from Cluster.Run.
func TestSingleNodeRunError(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Transport = TransportUDP
	hs := bringUpHandles(t, cfg)
	err := runHandles(hs, func(n *Node) {
		n.Barrier()
		if n.ID() == 1 {
			panic("deliberate")
		}
	})
	var ne *NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("error %v is not a *NodeError", err)
	}
	if ne.Node != 1 || !strings.Contains(ne.Error(), "deliberate") {
		t.Errorf("NodeError = %+v, want node 1 / deliberate", ne)
	}
}

// TestBindNodeValidation covers the new single-node configuration
// errors: wrong transport, out-of-range ids, premature Run.
func TestBindNodeValidation(t *testing.T) {
	cfg := DefaultConfig(3)
	if _, err := BindNode(cfg, 0); err == nil {
		t.Error("BindNode accepted the mem transport")
	}
	cfg.Transport = TransportUDP
	if _, err := BindNode(cfg, -1); err == nil {
		t.Error("BindNode accepted id -1")
	}
	if _, err := BindNode(cfg, 3); err == nil {
		t.Error("BindNode accepted id 3 of 3")
	}
	h, err := BindNode(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Run(func(*Node) {}); err == nil {
		t.Error("Run before Join succeeded")
	}
	if got := h.LocalAddr(); strings.HasSuffix(got, ":0") {
		t.Errorf("LocalAddr %q is unbound", got)
	}
}

// TestValidatePeerAddrs covers the address-list checks a launcher
// relies on: count mismatch, duplicates, unbound ports, garbage.
func TestValidatePeerAddrs(t *testing.T) {
	good := []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"}
	if err := ValidatePeerAddrs(good, 3); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	cases := map[string]struct {
		addrs []string
		nodes int
	}{
		"count mismatch": {good[:2], 3},
		"duplicate":      {[]string{good[0], good[1], good[0]}, 3},
		"unbound port":   {[]string{good[0], "127.0.0.1:0", good[2]}, 3},
		"no port":        {[]string{good[0], "127.0.0.1", good[2]}, 3},
		"empty":          {[]string{good[0], "", good[2]}, 3},
	}
	for name, tc := range cases {
		if err := ValidatePeerAddrs(tc.addrs, tc.nodes); err == nil {
			t.Errorf("%s accepted: %v", name, tc.addrs)
		}
	}
}

// TestConfigRejectsDuplicateAddrs: NewCluster-level validation of an
// explicit address list with a collision.
func TestConfigRejectsDuplicateAddrs(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Transport = TransportTCP
	cfg.Addrs = []string{"127.0.0.1:7090", "127.0.0.1:7090"}
	if _, err := NewCluster(cfg); err == nil {
		t.Error("NewCluster accepted duplicate addrs")
	}
	cfg.Addrs = []string{"127.0.0.1:0", "127.0.0.1:0"} // kernel-assigned: fine
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster rejected :0 addrs: %v", err)
	}
	c.Close()
}
