package lots

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/object"
)

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestSingleNodeAllocGetSet(t *testing.T) {
	c := mustCluster(t, DefaultConfig(1))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 100)
		if got := a.Get(0); got != 0 {
			panic(fmt.Sprintf("initial value = %d", got))
		}
		a.Set(7, 42)
		a.Set(99, -1)
		if a.Get(7) != 42 || a.Get(99) != -1 {
			panic("readback failed")
		}
		if a.Len() != 100 {
			panic("Len wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestElementTypes(t *testing.T) {
	c := mustCluster(t, DefaultConfig(1))
	err := c.Run(func(n *Node) {
		b := Alloc[byte](n, 10)
		b.Set(3, 200)
		if b.Get(3) != 200 {
			panic("byte")
		}
		f := Alloc[float64](n, 10)
		f.Set(2, 3.14159)
		if f.Get(2) != 3.14159 {
			panic("float64")
		}
		u := Alloc[uint64](n, 4)
		u.Set(0, 1<<60)
		if u.Get(0) != 1<<60 {
			panic("uint64")
		}
		g := Alloc[float32](n, 4)
		g.Set(1, -2.5)
		if g.Get(1) != -2.5 {
			panic("float32")
		}
		i64 := Alloc[int64](n, 4)
		i64.Set(0, -1<<40)
		if i64.Get(0) != -1<<40 {
			panic("int64")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierPropagatesWrites(t *testing.T) {
	c := mustCluster(t, DefaultConfig(4))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 64)
		if n.ID() == 2 {
			for i := 0; i < 64; i++ {
				a.Set(i, int32(i*i))
			}
		}
		n.Barrier()
		for i := 0; i < 64; i++ {
			if got := a.Get(i); got != int32(i*i) {
				panic(fmt.Sprintf("node %d: a[%d] = %d, want %d", n.ID(), i, got, i*i))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHomeMigratesToSoleWriter(t *testing.T) {
	c := mustCluster(t, DefaultConfig(4))
	var homeAfter atomic.Int64
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 16)
		if n.ID() == 3 {
			a.Set(0, 7)
		}
		n.Barrier()
		if n.ID() == 0 {
			n.mu.Lock()
			homeAfter.Store(int64(n.lookup(object.ID(a.ObjectID())).Home))
			n.mu.Unlock()
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if homeAfter.Load() != 3 {
		t.Errorf("home after barrier = %d, want sole writer 3", homeAfter.Load())
	}
	// The sole-writer migration must involve no barrier diff traffic.
	if total := c.Total(); total.HomeMigrates == 0 {
		t.Error("no home migration counted")
	}
}

func TestMultiWriterMergeAtBarrier(t *testing.T) {
	// Each node writes a disjoint quarter of the object; the barrier
	// must merge all quarters at the home and every node must then read
	// the complete object.
	const nodes = 4
	c := mustCluster(t, DefaultConfig(nodes))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 64)
		per := 64 / nodes
		base := n.ID() * per
		for i := 0; i < per; i++ {
			a.Set(base+i, int32(n.ID()+1))
		}
		n.Barrier()
		for i := 0; i < 64; i++ {
			want := int32(i/per + 1)
			if got := a.Get(i); got != want {
				panic(fmt.Sprintf("node %d: a[%d] = %d, want %d", n.ID(), i, got, want))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedBarrierRounds(t *testing.T) {
	// Rotating writer across epochs: exercises home migration chains
	// and invalidation/refetch in sequence.
	const nodes = 3
	const rounds = 6
	c := mustCluster(t, DefaultConfig(nodes))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 32)
		for r := 0; r < rounds; r++ {
			writer := r % nodes
			if n.ID() == writer {
				a.Set(r, int32(100+r))
			}
			n.Barrier()
			for k := 0; k <= r; k++ {
				if got := a.Get(k); got != int32(100+k) {
					panic(fmt.Sprintf("node %d round %d: a[%d] = %d", n.ID(), r, k, got))
				}
			}
			n.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusionAndScope(t *testing.T) {
	// Classic shared counter: increments under a lock must not be lost.
	// This exercises the homeless write-update path: each grant carries
	// the counter's scope updates to the next acquirer.
	const nodes = 4
	const perNode = 25
	c := mustCluster(t, DefaultConfig(nodes))
	err := c.Run(func(n *Node) {
		ctr := Alloc[int32](n, 1)
		for i := 0; i < perNode; i++ {
			n.Acquire(5)
			ctr.Set(0, ctr.Get(0)+1)
			n.Release(5)
		}
		n.Barrier()
		if got := ctr.Get(0); got != nodes*perNode {
			panic(fmt.Sprintf("node %d: counter = %d, want %d", n.ID(), got, nodes*perNode))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScopeConsistencyChain(t *testing.T) {
	// P0 writes x under L then releases; P1 acquires L (sees x), writes
	// y, releases; P2 acquires L and must see BOTH x and y (transitive
	// visibility through the lock's scope).
	c := mustCluster(t, DefaultConfig(3))
	err := c.Run(func(n *Node) {
		x := Alloc[int32](n, 4)
		y := Alloc[int32](n, 4)
		turn := Alloc[int32](n, 1)
		_ = turn
		switch n.ID() {
		case 0:
			n.Acquire(1)
			x.Set(0, 11)
			n.Release(1)
			n.RunBarrier() // stage gate (event only)
			n.RunBarrier()
		case 1:
			n.RunBarrier() // wait for P0's release
			n.Acquire(1)
			if got := x.Get(0); got != 11 {
				panic(fmt.Sprintf("P1 sees x = %d, want 11", got))
			}
			y.Set(0, 22)
			n.Release(1)
			n.RunBarrier()
		case 2:
			n.RunBarrier()
			n.RunBarrier() // wait for P1's release
			n.Acquire(1)
			if got := x.Get(0); got != 11 {
				panic(fmt.Sprintf("P2 sees x = %d, want 11", got))
			}
			if got := y.Get(0); got != 22 {
				panic(fmt.Sprintf("P2 sees y = %d, want 22", got))
			}
			n.Release(1)
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocksAfterBarrierStartClean(t *testing.T) {
	// After a barrier, lock versions are synchronized cluster-wide, so
	// the first post-barrier grant should carry no stale diffs.
	c := mustCluster(t, DefaultConfig(2))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 8)
		if n.ID() == 0 {
			n.Acquire(3)
			a.Set(0, 5)
			n.Release(3)
		}
		n.Barrier()
		// Both sides acquire after the barrier; data already reconciled.
		n.Acquire(3)
		if got := a.Get(0); got != 5 {
			panic(fmt.Sprintf("node %d: a[0] = %d, want 5", n.ID(), got))
		}
		n.Release(3)
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPointerArithmetic(t *testing.T) {
	c := mustCluster(t, DefaultConfig(1))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 10)
		// *(a+4) = 1, as in the paper's example.
		a.Add(4).SetDeref(1)
		if a.Get(4) != 1 {
			panic("pointer arithmetic write failed")
		}
		p := a.Add(6)
		p.Set(1, 99) // a[7]
		if a.Get(7) != 99 {
			panic("offset Set failed")
		}
		if p.Len() != 4 {
			panic(fmt.Sprintf("p.Len() = %d, want 4", p.Len()))
		}
		if p.Deref() != a.Get(6) {
			panic("Deref mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBulkGetSetN(t *testing.T) {
	c := mustCluster(t, DefaultConfig(2))
	err := c.Run(func(n *Node) {
		a := Alloc[int64](n, 1000)
		if n.ID() == 1 {
			vals := make([]int64, 1000)
			for i := range vals {
				vals[i] = int64(i) * 3
			}
			a.SetN(0, vals)
		}
		n.Barrier()
		got := a.GetN(500, 10)
		for k, v := range got {
			if v != int64(500+k)*3 {
				panic(fmt.Sprintf("GetN[%d] = %d", k, v))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatrixRowsAreSeparateObjects(t *testing.T) {
	c := mustCluster(t, DefaultConfig(2))
	err := c.Run(func(n *Node) {
		m := AllocMatrix[int32](n, 4, 8)
		if m.Row(0).ObjectID() == m.Row(1).ObjectID() {
			panic("rows share an object")
		}
		if n.ID() == 0 {
			m.Set(2, 3, 77)
			m.SetRow(1, []int32{1, 2, 3, 4, 5, 6, 7, 8})
		}
		n.Barrier()
		if m.Get(2, 3) != 77 {
			panic("matrix element lost")
		}
		row := m.GetRow(1)
		if row[7] != 8 {
			panic("matrix row lost")
		}
		if m.Rows() != 4 || m.Cols() != 8 {
			panic("dims")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLOTSxModeMatchesLOTS(t *testing.T) {
	// The LOTS-x variant (large object space disabled) must compute the
	// same results; only the residency machinery differs.
	for _, los := range []bool{true, false} {
		cfg := DefaultConfig(3)
		cfg.LargeObjectSpace = los
		c := mustCluster(t, cfg)
		err := c.Run(func(n *Node) {
			a := Alloc[int32](n, 128)
			if n.ID() == 1 {
				for i := 0; i < 128; i++ {
					a.Set(i, int32(i))
				}
			}
			n.Barrier()
			sum := int32(0)
			for i := 0; i < 128; i++ {
				sum += a.Get(i)
			}
			if sum != 127*128/2 {
				panic(fmt.Sprintf("sum = %d", sum))
			}
		})
		if err != nil {
			t.Fatalf("LargeObjectSpace=%v: %v", los, err)
		}
		snap := c.Total()
		if los && snap.MapIns == 0 {
			t.Error("LOTS mode should count map-ins")
		}
		if !los && snap.MapIns != 0 {
			t.Error("LOTS-x mode must not touch the mapper")
		}
	}
}

func TestSwappingClusterWorkload(t *testing.T) {
	// Object space larger than the DMM area on every node: the defining
	// large-object-space scenario (§4.3) in miniature. 32 objects of
	// 4 KB churn through a 16 KB DMM area while nodes exchange data at
	// barriers.
	cfg := DefaultConfig(2)
	cfg.DMMSize = 16 << 10
	c := mustCluster(t, cfg)
	err := c.Run(func(n *Node) {
		objs := make([]Ptr[int32], 32)
		for i := range objs {
			objs[i] = Alloc[int32](n, 1024) // 4 KB each
		}
		// Node 0 writes even objects, node 1 odd.
		for i, o := range objs {
			if i%2 == n.ID() {
				o.Set(0, int32(i))
				o.Set(1023, int32(i*2))
			}
		}
		n.Barrier()
		for i, o := range objs {
			if o.Get(0) != int32(i) || o.Get(1023) != int32(i*2) {
				panic(fmt.Sprintf("node %d: object %d corrupted: %d,%d",
					n.ID(), i, o.Get(0), o.Get(1023)))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total().SwapOuts == 0 {
		t.Error("workload should have forced swapping")
	}
}

func TestRunBarrierIsEventOnly(t *testing.T) {
	c := mustCluster(t, DefaultConfig(2))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 4)
		if n.ID() == 0 {
			a.Set(0, 9)
		}
		n.RunBarrier()
		// No memory synchronization: node 1 still sees its own copy
		// (initial zero) — and crucially, no invalidation happened.
		if n.ID() == 1 {
			if got := a.Get(0); got != 0 {
				panic(fmt.Sprintf("run-barrier must not synchronize memory; saw %d", got))
			}
		}
		n.Barrier() // full barrier does synchronize
		if got := a.Get(0); got != 9 {
			panic(fmt.Sprintf("node %d after full barrier: %d", n.ID(), got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPinBlocksSwap(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.DMMSize = 16 << 10
	c := mustCluster(t, cfg)
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 1024)
		b := Alloc[int32](n, 1024)
		cc := Alloc[int32](n, 1024)
		d := Alloc[int32](n, 1024)
		unpinA := a.Pin()
		// Touch the others to churn the arena.
		for _, o := range []Ptr[int32]{b, cc, d} {
			o.Set(0, 1)
		}
		a.Set(5, 55)
		unpinA()
		if a.Get(5) != 55 {
			panic("pinned object corrupted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{Nodes: 0}); err == nil {
		t.Error("Nodes=0 should fail")
	}
	if _, err := NewCluster(Config{Nodes: MaxNodes + 1}); err == nil {
		t.Error("Nodes>256 should fail")
	}
	cfg := DefaultConfig(1)
	cfg.DMMSize = 16
	if _, err := NewCluster(cfg); err == nil {
		t.Error("tiny DMMSize should fail")
	}
	cfg = DefaultConfig(1)
	cfg.MaxLocks = 1 << 20
	if _, err := NewCluster(cfg); err == nil {
		t.Error("huge MaxLocks should fail")
	}
}

func TestErrorsSurfaceThroughRun(t *testing.T) {
	c := mustCluster(t, DefaultConfig(1))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 4)
		a.Get(10) // out of bounds
	})
	if err == nil {
		t.Fatal("out-of-bounds access should fail the run")
	}
	c2 := mustCluster(t, DefaultConfig(1))
	err = c2.Run(func(n *Node) {
		n.Release(3) // never acquired
	})
	if err == nil {
		t.Fatal("release of unheld lock should fail")
	}
}

func TestBarrierWhileHoldingLockFails(t *testing.T) {
	c := mustCluster(t, DefaultConfig(1))
	err := c.Run(func(n *Node) {
		n.Acquire(1)
		n.Barrier()
	})
	if err == nil {
		t.Fatal("barrier inside a critical section should fail")
	}
}

func TestManyLocksDistinctManagers(t *testing.T) {
	// Locks hash to different manager nodes; all must work.
	const nodes = 4
	c := mustCluster(t, DefaultConfig(nodes))
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 16)
		for l := 0; l < 8; l++ {
			n.Acquire(l)
			a.Set(l, a.Get(l)+1)
			n.Release(l)
		}
		n.Barrier()
		for l := 0; l < 8; l++ {
			if got := a.Get(l); got != nodes {
				panic(fmt.Sprintf("a[%d] = %d, want %d", l, got, nodes))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimTimeAdvances(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Platform = paperPlatform()
	c := mustCluster(t, cfg)
	err := c.Run(func(n *Node) {
		a := Alloc[int32](n, 1024)
		if n.ID() == 0 {
			for i := 0; i < 1024; i++ {
				a.Set(i, int32(i))
			}
		}
		n.Barrier()
		_ = a.Get(512)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.SimTime() <= 0 {
		t.Error("simulated time did not advance")
	}
	if c.Total().AccessChecks == 0 {
		t.Error("access checks not counted")
	}
}
