package lots

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Cluster is a running LOTS cluster: N nodes connected by a transport.
// Each node mirrors one machine of the paper's testbed, with its own
// object table, DMM area, backing store, and protocol engine.
type Cluster struct {
	cfg      Config
	mem      *transport.MemCluster // nil for socket transports
	nodes    []*Node
	counters []*stats.Counters
	clocks   []*stats.SimClock
	rings    []*trace.Ring // per-node trace rings; all nil unless cfg.Trace

	closeOnce sync.Once
}

// chaosUDPRTO is the shortened retransmission timeout used when fault
// injection is enabled over UDP, so injected losses heal within test
// budgets instead of the production 50ms clock.
const chaosUDPRTO = 15 * time.Millisecond

// NewCluster builds a cluster per cfg over the configured transport:
// the in-memory interconnect by default, or real UDP/TCP sockets when
// cfg.Transport says so. cfg.Chaos wraps whichever transport was
// chosen in seeded fault injection.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	n := cfg.Nodes
	c.counters = make([]*stats.Counters, n)
	c.clocks = make([]*stats.SimClock, n)
	for i := 0; i < n; i++ {
		c.counters[i] = &stats.Counters{}
		c.clocks[i] = &stats.SimClock{}
	}
	// Trace rings exist before the endpoints: the UDP retransmit hook
	// closes over its rank's ring.
	c.rings = make([]*trace.Ring, n)
	if cfg.Trace {
		for i := 0; i < n; i++ {
			c.rings[i] = trace.NewRing(i, trace.DefaultWindow)
		}
	}
	eps, err := c.buildEndpoints()
	if err != nil {
		return nil, err
	}
	if cfg.Coalesce {
		// Coalescing wraps outermost — above chaos — so a batch crosses
		// the faulty layer as one unit, exactly like the single datagram
		// or write it becomes on a socket transport. Deferred messages
		// are stamped from the node's clock at Defer time, the moment
		// Send would have stamped them.
		for i := range eps {
			clk := c.clocks[i]
			eps[i] = transport.NewBatching(eps[i], c.counters[i],
				func() int64 { return int64(clk.Now()) })
		}
	}
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		var store disk.Store
		if cfg.LargeObjectSpace {
			if cfg.Store != nil {
				store = cfg.Store(i)
			} else {
				store = disk.NewSimStore(cfg.Platform.DiskFreeBytes)
			}
			store = disk.NewAccounted(store, cfg.Platform, c.counters[i], c.clocks[i])
		}
		c.nodes[i] = newNode(i, &c.cfg, eps[i], store, c.counters[i], c.clocks[i], c.rings[i])
	}
	for _, nd := range c.nodes {
		go nd.dispatch()
	}
	return c, nil
}

// buildEndpoints constructs one endpoint per node on the configured
// interconnect, applying cfg.Chaos at the layer appropriate to each
// transport: message-level wrapping for mem, datagram-level injection
// for UDP (so the sliding-window machinery absorbs the faults), and
// connection kills plus message-level wrapping for TCP. On partial
// failure every already-built endpoint is closed.
func (c *Cluster) buildEndpoints() ([]transport.Endpoint, error) {
	cfg := &c.cfg
	n := cfg.Nodes
	switch cfg.Transport {
	case TransportMem:
		c.mem = transport.NewMemCluster(n, cfg.Platform, c.counters, c.clocks)
		eps := c.mem.Endpoints()
		if cfg.Chaos != nil {
			eps = transport.WrapEndpoints(eps, *cfg.Chaos)
		}
		return eps, nil

	case TransportUDP:
		addrs := cfg.Addrs
		if addrs == nil {
			var err error
			addrs, err = transport.FreeLocalAddrs(n)
			if err != nil {
				return nil, fmt.Errorf("lots: %w", err)
			}
		}
		eps := make([]transport.Endpoint, n)
		for i := 0; i < n; i++ {
			o := transport.UDPOptions{Counters: c.counters[i], Window: cfg.UDPWindow}
			if tr := c.rings[i]; tr != nil {
				o.OnRetransmit = func(frags int) {
					tr.Instant(trace.Retransmit, 0, uint64(frags), wire.TraceCtx{})
				}
			}
			if cfg.Chaos != nil {
				o.Chaos = cfg.Chaos
				o.RTO = chaosUDPRTO
			}
			ep, err := transport.NewUDPEndpointOptions(i, addrs, o)
			if err != nil {
				return nil, errors.Join(err, closeAll(eps[:i]))
			}
			eps[i] = ep
		}
		return eps, nil

	case TransportTCP:
		addrs := cfg.Addrs
		if addrs == nil {
			var err error
			addrs, err = transport.FreeLocalTCPAddrs(n)
			if err != nil {
				return nil, fmt.Errorf("lots: %w", err)
			}
		}
		eps := make([]transport.Endpoint, n)
		for i := 0; i < n; i++ {
			o := transport.TCPOptions{Counters: c.counters[i], Chaos: cfg.Chaos, TLS: cfg.TLS}
			ep, err := transport.NewTCPEndpointOptions(i, addrs, o)
			if err != nil {
				return nil, errors.Join(err, closeAll(eps[:i]))
			}
			eps[i] = ep
		}
		if cfg.Chaos != nil {
			eps = transport.WrapEndpoints(eps, *cfg.Chaos)
		}
		return eps, nil

	default:
		return nil, fmt.Errorf("lots: unknown transport %v", cfg.Transport)
	}
}

func closeAll(eps []transport.Endpoint) error {
	var errs []error
	for _, ep := range eps {
		if ep != nil {
			if err := ep.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Node returns node i (for single-node inspection in tests).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NodeError reports the failure (application or DSM panic, or a dead
// peer process in multi-process deployment) of one specific node. It
// is the distinct exit path callers use to learn *which* rank died:
// errors.As on the error of Cluster.Run, NodeHandle.Run/Join, or the
// multi-process launcher yields the casualty's rank.
type NodeError struct {
	Node  int
	Cause error
}

func (e *NodeError) Error() string { return fmt.Sprintf("lots: node %d: %v", e.Node, e.Cause) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Cause }

// panicError converts a recovered panic value into an error,
// preserving the chain of a panicked error value so errors.Is/As keep
// working through NodeError.Unwrap.
func panicError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("%v", r)
}

// Run executes fn SPMD-style: once per node, concurrently, like the
// paper's "each machine runs a copy of the application binary". Every
// node's DSM or application panic is converted to a *NodeError and the
// per-node errors are joined, so a multi-node failure reports all of
// its casualties (with their ranks) instead of masking all but the
// lowest-ranked one.
func (c *Cluster) Run(fn func(n *Node)) error {
	errs := make([]error, c.cfg.Nodes)
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &NodeError{Node: i, Cause: panicError(r)}
				}
			}()
			fn(c.nodes[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Snapshots returns per-node counter snapshots.
func (c *Cluster) Snapshots() []stats.Snapshot {
	out := make([]stats.Snapshot, len(c.counters))
	for i, ctr := range c.counters {
		out[i] = ctr.Snap()
	}
	return out
}

// Total returns the cluster-wide counter aggregate.
func (c *Cluster) Total() stats.Snapshot {
	var t stats.Snapshot
	for _, s := range c.Snapshots() {
		t = t.Add(s)
	}
	return t
}

// SimTime returns the simulated execution time so far: the maximum of
// the per-node clocks (the slowest machine defines an SPMD phase).
func (c *Cluster) SimTime() time.Duration {
	ts := make([]time.Duration, len(c.clocks))
	for i, clk := range c.clocks {
		ts[i] = clk.Now()
	}
	return stats.MaxOf(ts...)
}

// NodeTime returns node i's simulated clock.
func (c *Cluster) NodeTime(i int) time.Duration { return c.clocks[i].Now() }

// ResetClocks zeroes all simulated clocks (for measuring a phase).
func (c *Cluster) ResetClocks() {
	for _, clk := range c.clocks {
		clk.Reset()
	}
}

// Config returns the cluster configuration (after validation defaults).
func (c *Cluster) Config() Config { return c.cfg }

// Close shuts down transports and backing stores.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		if c.mem != nil {
			c.mem.Close()
		}
		for _, n := range c.nodes {
			n.close()
		}
	})
}

// NewClusterOverUDP builds a cluster whose nodes communicate over real
// UDP sockets (loopback by default) instead of the in-memory
// interconnect: the full wire path — encode, 64 KB fragmentation,
// sliding-window flow control, acknowledgement, retransmission — is
// exercised end to end, as in the original system's point-to-point
// UDP/IP channels (§3.6). addrs may be nil (kernel-assigned loopback
// ports) or one UDP address per node.
//
// Simulated-time accounting is unavailable over sockets (clocks are
// not threaded through foreign machines); use the in-memory transport
// for the benchmark harness.
func NewClusterOverUDP(cfg Config, addrs []string) (*Cluster, error) {
	cfg.Transport = TransportUDP
	cfg.Addrs = addrs
	return NewCluster(cfg)
}

// NewClusterOverTCP builds a cluster whose nodes communicate over
// persistent TCP connections with length-prefixed framing and
// reconnect-on-failure. addrs may be nil (kernel-assigned loopback
// ports) or one TCP address per node.
func NewClusterOverTCP(cfg Config, addrs []string) (*Cluster, error) {
	cfg.Transport = TransportTCP
	cfg.Addrs = addrs
	return NewCluster(cfg)
}
