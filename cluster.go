package lots

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Cluster is a running LOTS cluster: N nodes connected by a transport.
// Each node mirrors one machine of the paper's testbed, with its own
// object table, DMM area, backing store, and protocol engine.
type Cluster struct {
	cfg      Config
	mem      *transport.MemCluster
	nodes    []*Node
	counters []*stats.Counters
	clocks   []*stats.SimClock

	closeOnce sync.Once
}

// NewCluster builds a cluster per cfg over the in-memory transport.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	n := cfg.Nodes
	c.counters = make([]*stats.Counters, n)
	c.clocks = make([]*stats.SimClock, n)
	for i := 0; i < n; i++ {
		c.counters[i] = &stats.Counters{}
		c.clocks[i] = &stats.SimClock{}
	}
	c.mem = transport.NewMemCluster(n, cfg.Platform, c.counters, c.clocks)
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		var store disk.Store
		if cfg.LargeObjectSpace {
			if cfg.Store != nil {
				store = cfg.Store(i)
			} else {
				store = disk.NewSimStore(cfg.Platform.DiskFreeBytes)
			}
			store = disk.NewAccounted(store, cfg.Platform, c.counters[i], c.clocks[i])
		}
		c.nodes[i] = newNode(i, &c.cfg, c.mem.Endpoint(i), store, c.counters[i], c.clocks[i])
	}
	for _, nd := range c.nodes {
		go nd.dispatch()
	}
	return c, nil
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Node returns node i (for single-node inspection in tests).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Run executes fn SPMD-style: once per node, concurrently, like the
// paper's "each machine runs a copy of the application binary". It
// returns the first DSM or application panic as an error.
func (c *Cluster) Run(fn func(n *Node)) error {
	errs := make([]error, c.cfg.Nodes)
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("lots: node %d: %v", i, r)
				}
			}()
			fn(c.nodes[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshots returns per-node counter snapshots.
func (c *Cluster) Snapshots() []stats.Snapshot {
	out := make([]stats.Snapshot, len(c.counters))
	for i, ctr := range c.counters {
		out[i] = ctr.Snap()
	}
	return out
}

// Total returns the cluster-wide counter aggregate.
func (c *Cluster) Total() stats.Snapshot {
	var t stats.Snapshot
	for _, s := range c.Snapshots() {
		t = t.Add(s)
	}
	return t
}

// SimTime returns the simulated execution time so far: the maximum of
// the per-node clocks (the slowest machine defines an SPMD phase).
func (c *Cluster) SimTime() time.Duration {
	ts := make([]time.Duration, len(c.clocks))
	for i, clk := range c.clocks {
		ts[i] = clk.Now()
	}
	return stats.MaxOf(ts...)
}

// NodeTime returns node i's simulated clock.
func (c *Cluster) NodeTime(i int) time.Duration { return c.clocks[i].Now() }

// ResetClocks zeroes all simulated clocks (for measuring a phase).
func (c *Cluster) ResetClocks() {
	for _, clk := range c.clocks {
		clk.Reset()
	}
}

// Config returns the cluster configuration (after validation defaults).
func (c *Cluster) Config() Config { return c.cfg }

// Close shuts down transports and backing stores.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		if c.mem != nil {
			c.mem.Close()
		}
		for _, n := range c.nodes {
			n.close()
		}
	})
}
