package lots

import (
	"sort"
	"time"

	"repro/internal/diffing"
	"repro/internal/object"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Lock protocol (§3.4): LOTS uses a homeless, write-update protocol for
// propagating object updates during lock synchronization. Each lock has
// a statically assigned manager node (lock % N) that orders grants; the
// update data flows point-to-point from the last releaser to the next
// acquirer, attached to the grant — exactly the migratory /
// producer-consumer pattern the paper optimizes for.
//
// Under Scope Consistency, acquiring lock L makes visible all updates
// performed inside critical sections previously guarded by L. The
// releaser computes the data to send on demand from its current object
// contents plus per-word stamps (§3.5): every word stamped (L, v) with
// v newer than the acquirer's applied version is included, and nothing
// else — no accumulated diff chains.

// lockMgr is the per-lock manager state (lives on node lock % N).
type lockMgr struct {
	held         bool
	holder       int
	lastReleaser int
	ver          uint32
	scope        map[object.ID]bool
	lastWrite    map[object.ID]uint32 // home-based ablation: obj -> last write version
	queue        []lockWaiter
}

type lockWaiter struct {
	from   uint16
	reqID  uint64
	known  uint32
	arrive time.Duration // simulated arrival of the request at the manager
}

func (n *Node) managerOf(l uint16) int { return int(l) % n.cfg.Nodes }

func (n *Node) lockMgrState(l uint16) *lockMgr {
	mg := n.lmgr[l]
	if mg == nil {
		mg = &lockMgr{lastReleaser: -1, scope: make(map[object.ID]bool),
			lastWrite: make(map[object.ID]uint32)}
		n.lmgr[l] = mg
	}
	return mg
}

// Acquire enters the critical section guarded by lock l, applying all
// updates previously made under l (Scope Consistency).
func (n *Node) Acquire(l int) {
	if l < 0 || l >= n.cfg.MaxLocks {
		n.fatalf("lots: node %d: lock %d out of range [0,%d)", n.id, l, n.cfg.MaxLocks)
	}
	lk := uint16(l)
	n.mu.Lock()
	if _, dup := n.held[lk]; dup {
		n.mu.Unlock()
		n.fatalf("lots: node %d: lock %d acquired twice", n.id, l)
	}
	known := n.knownVer[lk]
	epoch := n.epoch
	n.mu.Unlock()

	n.ctr.LockAcquires.Add(1)
	var w wire.Buffer
	w.U8(0).U16(lk).U32(known)
	ltc := n.tr.Begin(trace.LockAcquire, epoch, uint64(l), wire.TraceCtx{})
	reply := n.rpcT(n.managerOf(lk), wire.TLockReq, w.Bytes(), ltc)
	n.tr.End(ltc)
	if reply.Type != wire.TLockGrant {
		n.fatalf("lots: node %d: lock %d: unexpected reply %v", n.id, l, reply.Type)
	}
	n.applyGrant(lk, reply.Payload)
}

// Release leaves the critical section: changed words are stamped
// (per-field timestamps) or appended to diff chains (ablation mode),
// and the manager is told the new lock version and scope.
func (n *Node) Release(l int) {
	lk := uint16(l)
	n.mu.Lock()
	cs := n.held[lk]
	if cs == nil {
		n.mu.Unlock()
		n.fatalf("lots: node %d: release of lock %d not held", n.id, l)
	}
	newVer := cs.grantVer
	if len(cs.written) > 0 {
		newVer++
	}
	written := make([]object.ID, 0, len(cs.written))
	type homeFlush struct {
		dest    int
		payload []byte
	}
	var flushes []homeFlush
	for id := range cs.written {
		written = append(written, id)
		c := n.lookup(id)
		data := n.objData(c)
		twin := cs.csTwins[id]
		d := diffing.Compute(data, twin)
		n.clock.Advance(n.prof.WordsCost(c.Words()))
		if d.Empty() {
			continue
		}
		n.ctr.DiffsMade.Add(1)
		n.ctr.DiffBytes.Add(int64(d.Bytes()))
		stamp := object.WordStamp{Ver: newVer, Lock: lk, Node: uint16(n.id), Epoch: n.epoch}
		diffing.StampChanged(c.EnsureStamps(), data, twin, stamp)
		if n.cfg.Protocol.Diff == DiffAccumulate {
			// The accumulating ablation additionally stores the diff
			// history; grants then carry chains instead of on-demand
			// per-field diffs (stamps above keep merge rules intact).
			ch := n.chains[id]
			if ch == nil {
				ch = &diffing.Chain{}
				n.chains[id] = ch
			}
			ch.Append(newVer, d)
		}
		if n.cfg.Protocol.Lock == LockHomeBased && c.Home != n.id {
			// Home-based ablation: flush the diff to the object's home
			// eagerly at release, like JIAJIA.
			sd := diffing.ComputeStamped(data, twin, c.Stamps, n.epoch)
			var w wire.Buffer
			w.U32(n.epoch).U8(1).U64(uint64(id))
			sd.Encode(&w)
			flushes = append(flushes, homeFlush{dest: c.Home, payload: w.Bytes()})
		}
	}
	sort.Slice(written, func(i, j int) bool { return written[i] < written[j] })
	n.knownVer[lk] = newVer
	delete(n.held, lk)
	for i, h := range n.csStack {
		if h == lk {
			n.csStack = append(n.csStack[:i], n.csStack[i+1:]...)
			break
		}
	}
	scopeIDs := n.scopeList(lk)
	epoch := n.epoch
	n.mu.Unlock()

	for _, f := range flushes {
		tc := n.tr.Instant(trace.DiffSend, epoch, uint64(f.dest), wire.TraceCtx{})
		if reply := n.rpcT(f.dest, wire.TBarrierDiff, f.payload, tc); reply.Type != wire.TBarrierDiffAck {
			n.fatalf("lots: node %d: home flush rejected: %v", n.id, reply.Type)
		}
	}

	var w wire.Buffer
	w.U16(lk).U32(newVer)
	w.U32(uint32(len(written)))
	for _, id := range written {
		w.U64(uint64(id))
	}
	w.U32(uint32(len(scopeIDs)))
	for _, id := range scopeIDs {
		w.U64(uint64(id))
	}
	n.tr.Instant(trace.LockRelease, epoch, uint64(l), wire.TraceCtx{})
	n.send(n.managerOf(lk), wire.TLockFree, 0, w.Bytes(), 0)
}

// scopeList returns lock l's known scope set, sorted. Caller holds mu.
func (n *Node) scopeList(l uint16) []object.ID {
	s := n.scope[l]
	out := make([]object.ID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// serveLockReq handles both roles: kind 0 is a request arriving at the
// manager; kind 1 is a request the manager forwarded to the last
// releaser, which must build and send the grant directly.
func (n *Node) serveLockReq(m wire.Message) {
	r := wire.NewReader(m.Payload)
	kind := r.U8()
	lk := r.U16()
	known := r.U32()
	lc := n.svcClock(m)
	if kind == 1 {
		orig := r.U16()
		if r.Err() != nil {
			n.fatalf("lots: bad forwarded lock request: %v", r.Err())
		}
		n.sendGrant(int(orig), m.ReqID, lk, known, lc)
		return
	}
	if r.Err() != nil {
		n.fatalf("lots: bad lock request: %v", r.Err())
	}
	wtr := lockWaiter{from: m.From, reqID: m.ReqID, known: known, arrive: lc.Now()}
	n.mu.Lock()
	mg := n.lockMgrState(lk)
	if mg.held {
		mg.queue = append(mg.queue, wtr)
		n.mu.Unlock()
		return
	}
	mg.held = true
	mg.holder = int(m.From)
	n.grantFromManagerLocked(mg, lk, wtr, lc)
}

// grantFromManagerLocked routes one grant for lk to wtr on the service
// timeline lc (already merged past both the lock's availability and the
// waiter's request arrival). Caller holds n.mu; it is released before
// any message is sent.
func (n *Node) grantFromManagerLocked(mg *lockMgr, lk uint16, wtr lockWaiter, lc *stats.SimClock) {
	lc.MergeTo(wtr.arrive)
	switch {
	case n.cfg.Protocol.Lock == LockHomeBased:
		// Home-based: the manager grants directly with write notices;
		// data is already at the homes.
		payload := n.encodeHomeBasedGrant(mg, lk)
		n.mu.Unlock()
		n.send(int(wtr.from), wire.TLockGrant, wtr.reqID|replyBit, payload, lc.Now())
	case mg.lastReleaser < 0 || mg.lastReleaser == int(wtr.from):
		// First acquire ever, or re-acquire by the last releaser: no
		// updates to transfer; the manager grants directly.
		payload := encodeEmptyGrant(lk, mg.ver, mg.scope)
		n.mu.Unlock()
		n.send(int(wtr.from), wire.TLockGrant, wtr.reqID|replyBit, payload, lc.Now())
	default:
		// Forward to the last releaser, which holds the freshest data
		// and serves the grant point-to-point (homeless protocol).
		rel := mg.lastReleaser
		n.mu.Unlock()
		var w wire.Buffer
		w.U8(1).U16(lk).U32(wtr.known).U16(wtr.from)
		n.send(rel, wire.TLockReq, wtr.reqID, w.Bytes(), lc.Now())
	}
}

// encodeEmptyGrant builds a grant with the scope list but no diffs.
func encodeEmptyGrant(lk uint16, ver uint32, scope map[object.ID]bool) []byte {
	ids := make([]object.ID, 0, len(scope))
	for id := range scope {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var w wire.Buffer
	w.U16(lk).U32(ver).U32(uint32(len(ids)))
	for _, id := range ids {
		w.U64(uint64(id)).U32(0) // zero diffs
	}
	return w.Bytes()
}

// encodeHomeBasedGrant builds a grant carrying write notices
// (objID, lastWriteVer) instead of data. Caller holds n.mu.
func (n *Node) encodeHomeBasedGrant(mg *lockMgr, lk uint16) []byte {
	ids := make([]object.ID, 0, len(mg.lastWrite))
	for id := range mg.lastWrite {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var w wire.Buffer
	w.U16(lk).U32(mg.ver).U32(uint32(len(ids)))
	for _, id := range ids {
		w.U64(uint64(id)).U32(mg.lastWrite[id])
	}
	return w.Bytes()
}

// sendGrant builds the homeless write-update grant at the last
// releaser: for every object in l's scope, the words written under l
// since the requester's version, computed on demand (§3.5). lc is the
// service timeline.
func (n *Node) sendGrant(to int, reqID uint64, lk uint16, known uint32, lc *stats.SimClock) {
	n.mu.Lock()
	restore := n.useClock(lc)
	ver := n.knownVer[lk]
	ids := n.scopeList(lk)
	var w wire.Buffer
	w.U16(lk).U32(ver).U32(uint32(len(ids)))
	for _, id := range ids {
		c := n.lookup(id)
		// Like serveFetch, the grant path must not read an object whose
		// span is mid-mutation under an open RW view (the writes hold no
		// lock); wait for the mutation window to close. The node clock
		// is un-redirected around the wait (other mu holders must charge
		// their own timelines), and materialize can drop n.mu around a
		// fetch, so loop until both conditions hold together.
		for {
			for c.RWViews > 0 {
				restore()
				n.cond.Wait()
				restore = n.useClock(lc)
			}
			n.materializePendingLocked(c)
			if c.RWViews == 0 {
				break
			}
		}
		w.U64(uint64(id))
		switch n.cfg.Protocol.Diff {
		case DiffAccumulate:
			ch := n.chains[id]
			if ch == nil {
				w.U32(0)
				continue
			}
			entries, bytes := ch.SinceEntries(known)
			w.U32(uint32(len(entries)))
			for _, e := range entries {
				w.U32(e.Ver)
				e.Diff.Encode(&w)
			}
			if bytes > 0 {
				n.ctr.DiffBytes.Add(int64(bytes))
			}
		default:
			d := n.onDemandDiffLocked(c, lk, known)
			if d.Empty() {
				w.U32(0)
			} else {
				w.U32(1)
				d.Encode(&w)
				n.ctr.DiffBytes.Add(int64(d.Bytes()))
			}
		}
	}
	restore()
	n.mu.Unlock()
	n.send(to, wire.TLockGrant, reqID|replyBit, w.Bytes(), lc.Now())
}

// onDemandDiffLocked computes the grant diff for one object from the
// current data plus per-word stamps. It only maps the object in when at
// least one word qualifies, so cold scope objects stay on disk.
func (n *Node) onDemandDiffLocked(c *object.Control, lk uint16, known uint32) diffing.Diff {
	if c.Stamps == nil {
		return diffing.Diff{}
	}
	epoch := n.epoch
	include := func(s object.WordStamp) bool {
		return s.Lock == lk && s.Ver > known && s.Epoch == epoch
	}
	any := false
	for _, s := range c.Stamps {
		if include(s) {
			any = true
			break
		}
	}
	if !any {
		return diffing.Diff{}
	}
	data := n.objData(c)
	n.curClock.Advance(n.prof.WordsCost(c.Words()))
	d := diffing.FilterByStamp(data, c.Stamps, include)
	if !d.Empty() {
		n.ctr.DiffsMade.Add(1)
	}
	return d
}

// applyGrant installs the critical section at the acquirer, applying
// (or deferring) the scope updates carried by the grant.
func (n *Node) applyGrant(lk uint16, payload []byte) {
	r := wire.NewReader(payload)
	glk := r.U16()
	ver := r.U32()
	count := int(r.U32())
	if r.Err() != nil || glk != lk {
		n.fatalf("lots: node %d: bad grant for lock %d: %v", n.id, lk, r.Err())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// The manager's view can lag our own release (its TLockFree may
	// still be in flight when we re-acquire), so a grant's version can
	// never be below what this node already knows: release versions
	// must be monotone or a newer write would stamp lower than an older
	// one and lose the barrier merge.
	if n.knownVer[lk] > ver {
		ver = n.knownVer[lk]
	}
	homeBased := n.cfg.Protocol.Lock == LockHomeBased
	for i := 0; i < count; i++ {
		id := object.ID(r.U64())
		c := n.lookup(id)
		n.addScope(lk, id)
		if homeBased {
			lastWrite := r.U32()
			if r.Err() != nil {
				n.fatalf("lots: node %d: bad home-based grant: %v", n.id, r.Err())
			}
			n.homeBasedInvalidate(c, lk, lastWrite)
			continue
		}
		nd := int(r.U32())
		for j := 0; j < nd; j++ {
			dv := ver
			if n.cfg.Protocol.Diff == DiffAccumulate {
				dv = r.U32()
			}
			d, err := diffing.DecodeDiff(r)
			if err != nil {
				n.fatalf("lots: node %d: bad grant diff: %v", n.id, err)
			}
			n.applyScopeDiff(c, lk, dv, d)
			if n.cfg.Protocol.Diff == DiffAccumulate {
				// Accumulation compounds: the acquirer must keep the
				// received history to serve future grants (Figure 7a).
				ch := n.chains[id]
				if ch == nil {
					ch = &diffing.Chain{}
					n.chains[id] = ch
				}
				ch.Append(dv, d)
			}
		}
	}
	if ver > n.knownVer[lk] {
		n.knownVer[lk] = ver
	}
	cs := &csState{
		lock:     lk,
		grantVer: ver,
		written:  make(map[object.ID]bool),
		csTwins:  make(map[object.ID][]byte),
	}
	n.held[lk] = cs
	n.csStack = append(n.csStack, lk)
}

// homeBasedInvalidate drops the local copy of an object whose home has
// newer data (the write-invalidate half of the ablation protocol).
// Caller holds n.mu.
func (n *Node) homeBasedInvalidate(c *object.Control, lk uint16, lastWrite uint32) {
	if c.Home == n.id {
		return // the home received the diffs at release time
	}
	seen := n.knownVer[lk]
	if lastWrite <= seen || c.State == object.Invalid {
		return
	}
	n.invalidateLocked(c)
}

// invalidateLocked discards the local copy. Caller holds n.mu.
func (n *Node) invalidateLocked(c *object.Control) {
	if c.State == object.Invalid {
		return
	}
	c.State = object.Invalid
	c.Lease = false
	n.ctr.Invalidations.Add(1)
	if n.mapper != nil {
		if c.Mapped {
			n.mapper.Drop(c)
		} else if n.store != nil {
			n.store.Delete(uint64(c.ID)) //nolint:errcheck // advisory spill cleanup
			c.DiskValid = false
		}
	} else {
		c.Heap = nil
	}
}

// serveLockFree processes a release notice at the manager: record the
// new version, scope, and last releaser, then hand the lock to the next
// queued waiter (if any).
func (n *Node) serveLockFree(m wire.Message) {
	r := wire.NewReader(m.Payload)
	lk := r.U16()
	ver := r.U32()
	nw := int(r.U32())
	written := make([]object.ID, 0, nw)
	for i := 0; i < nw; i++ {
		written = append(written, object.ID(r.U64()))
	}
	ns := int(r.U32())
	scopeIDs := make([]object.ID, 0, ns)
	for i := 0; i < ns; i++ {
		scopeIDs = append(scopeIDs, object.ID(r.U64()))
	}
	if r.Err() != nil {
		n.fatalf("lots: bad lock-free payload: %v", r.Err())
	}
	lc := n.svcClock(m)
	n.mu.Lock()
	mg := n.lockMgrState(lk)
	if !mg.held || mg.holder != int(m.From) {
		n.mu.Unlock()
		n.fatalf("lots: node %d: release of lock %d from non-holder %d", n.id, lk, m.From)
	}
	mg.held = false
	mg.lastReleaser = int(m.From)
	if ver > mg.ver {
		mg.ver = ver
	}
	for _, id := range scopeIDs {
		mg.scope[id] = true
	}
	for _, id := range written {
		mg.lastWrite[id] = ver
	}
	if len(mg.queue) == 0 {
		n.mu.Unlock()
		return
	}
	next := mg.queue[0]
	mg.queue = mg.queue[1:]
	mg.held = true
	mg.holder = int(next.from)
	n.grantFromManagerLocked(mg, lk, next, lc) // releases n.mu
}

// LockVersion reports lock l's version as known to this node (testing
// and diagnostics).
func (n *Node) LockVersion(l int) uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.knownVer[uint16(l)]
}
