package lots

import (
	"encoding/binary"
	"math"

	"repro/internal/object"
)

// Elem is the set of element types shared arrays may hold. The paper's
// Pointer<T> is a C++ class template; this reproduction supports the
// fixed-size scalar types scientific codes use.
type Elem interface {
	byte | int32 | uint32 | int64 | uint64 | float32 | float64
}

// Ptr is a handle to a shared object — the analogue of the paper's
// Pointer class, which "contains only the object ID, which fits the
// size of a pointer", making pointer arithmetic possible (§3.3). A Ptr
// holds the object ID plus an element offset so that expressions like
// *(a+4) = 1 translate to a.Add(4).SetDeref(1).
//
// Every Get/Set goes through the LOTS access check: a table lookup in
// the common case; a dynamic memory mapping (possibly a disk read, and
// possibly swapping another object out) when the object is not mapped;
// and a coherence fetch when the local copy is not clean.
type Ptr[T Elem] struct {
	n   *Node
	id  object.ID
	off int // element offset for pointer arithmetic
}

// Alloc declares a shared object of count elements and allocates its
// control information on the calling node. It is a collective
// operation: every node must call Alloc in the same order with the same
// arguments (SPMD), which makes the generated object IDs agree
// cluster-wide without communication, as in the paper (§3.2). Physical
// memory for the data is NOT allocated here; it is mapped on first
// access.
func Alloc[T Elem](n *Node, count int) Ptr[T] {
	if count <= 0 {
		n.fatalf("lots: node %d: Alloc of %d elements", n.id, count)
	}
	elem := elemSize[T]()
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.table.Declare()
	c := &object.Control{
		ID:    id,
		Size:  count * elem,
		Elem:  elem,
		Home:  int(uint64(id) % uint64(n.cfg.Nodes)),
		State: object.Initial,
	}
	if err := n.table.Register(c); err != nil {
		n.fatalf("lots: node %d: %v", n.id, err)
	}
	return Ptr[T]{n: n, id: id}
}

// Nil reports whether the pointer is unallocated.
func (p Ptr[T]) Nil() bool { return p.id == object.NilID }

// ObjectID exposes the shared object ID (diagnostics).
func (p Ptr[T]) ObjectID() uint64 { return uint64(p.id) }

// Len returns the number of elements reachable from this pointer
// (shrinks as the pointer is advanced, like C pointer arithmetic
// against the end of the array).
func (p Ptr[T]) Len() int {
	c := p.n.lookup(p.id)
	return c.Size/c.Elem - p.off
}

// Add returns a pointer advanced by k elements — the paper's supported
// pointer arithmetic on shared objects.
func (p Ptr[T]) Add(k int) Ptr[T] {
	p.off += k
	return p
}

// Get reads element i (relative to the pointer's current offset). It
// is a one-element view: check, pin, read, unpin, all under one node
// lock acquisition.
func (p Ptr[T]) Get(i int) T {
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c, base := p.locate(i, 1)
	data := n.viewEnter(c, false)
	v := getElem[T](data[base:])
	n.viewExit(c, false)
	return v
}

// Set writes element i (a one-element RW view).
func (p Ptr[T]) Set(i int, v T) {
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c, base := p.locate(i, 1)
	data := n.viewEnter(c, true)
	putElem(data[base:], v)
	n.viewExit(c, true)
}

// Deref reads *(p), i.e. element 0.
func (p Ptr[T]) Deref() T { return p.Get(0) }

// SetDeref writes *(p) = v.
func (p Ptr[T]) SetDeref(v T) { p.Set(0, v) }

// GetN bulk-reads count elements starting at i: a one-span view that
// copies out. It keeps the paper's element-wise accounting (an
// n-element sweep of the C++ runtime performs n status checks, §4.2);
// use View/CopyTo to both skip the copy and pay a single check.
func (p Ptr[T]) GetN(i, count int) []T {
	if count == 0 {
		return nil
	}
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c, base := p.locate(i, count)
	data := n.viewEnter(c, false)
	n.chargeChecks(count - 1)
	out := make([]T, count)
	es := c.Elem
	for k := 0; k < count; k++ {
		out[k] = getElem[T](data[base+k*es:])
	}
	n.viewExit(c, false)
	return out
}

// SetN bulk-writes vals starting at element i (a one-span RW view with
// the legacy per-element check accounting; use ViewRW/CopyFrom for the
// single-check path).
func (p Ptr[T]) SetN(i int, vals []T) {
	if len(vals) == 0 {
		return
	}
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c, base := p.locate(i, len(vals))
	data := n.viewEnter(c, true)
	n.chargeChecks(len(vals) - 1)
	es := c.Elem
	for k, v := range vals {
		putElem(data[base+k*es:], v)
	}
	n.viewExit(c, true)
}

// Pin maps the object in and pins it against swapping, returning the
// unpin function. It implements the statement-scope pinning of §3.3:
// pin every object referenced by a multi-object statement, perform the
// accesses, then unpin.
func (p Ptr[T]) Pin() (unpin func()) {
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c := n.lookup(p.id)
	if c.State == object.Invalid {
		n.fetchObject(c)
	}
	n.objData(c)
	if n.mapper == nil {
		return func() {}
	}
	n.mapper.Pin(c)
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.mapper.Unpin(c)
	}
}

// locate validates [i, i+count) against the object bounds and returns
// the control block plus the base byte offset. Caller holds n.mu.
func (p Ptr[T]) locate(i, count int) (*object.Control, int) {
	c := p.n.lookup(p.id)
	first := p.off + i
	if first < 0 || count < 0 || (first+count)*c.Elem > c.Size {
		p.n.fatalf("lots: node %d: object %d: access [%d,%d) out of bounds (len %d)",
			p.n.id, p.id, first, first+count, c.Size/c.Elem)
	}
	return c, first * c.Elem
}

// Matrix is a 2-D shared array. Following the paper, each row is a
// separate shared object: "For pointer of pointers or 2-dimension
// arrays, LOTS treats each pointer or row as a separate object" (§3.2).
// This is what eliminates false sharing in LU and SOR.
type Matrix[T Elem] struct {
	rows []Ptr[T]
	cols int
}

// AllocMatrix declares rows×cols shared elements as `rows` separate
// row objects. Collective, like Alloc.
func AllocMatrix[T Elem](n *Node, rows, cols int) Matrix[T] {
	m := Matrix[T]{rows: make([]Ptr[T], rows), cols: cols}
	for r := range m.rows {
		m.rows[r] = Alloc[T](n, cols)
	}
	return m
}

// Rows returns the number of rows.
func (m Matrix[T]) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m Matrix[T]) Cols() int { return m.cols }

// Row returns the shared object holding row r.
func (m Matrix[T]) Row(r int) Ptr[T] { return m.rows[r] }

// Get reads element (r, c).
func (m Matrix[T]) Get(r, c int) T { return m.rows[r].Get(c) }

// Set writes element (r, c).
func (m Matrix[T]) Set(r, c int, v T) { m.rows[r].Set(c, v) }

// RowView returns a read-only pinned view of an entire row — the unit
// the paper's row-per-object layout (§3.2) makes natural.
func (m Matrix[T]) RowView(r int) View[T] { return m.rows[r].View(0, m.cols) }

// RowViewRW returns a read-write pinned view of an entire row.
func (m Matrix[T]) RowViewRW(r int) View[T] { return m.rows[r].ViewRW(0, m.cols) }

// GetRow bulk-reads an entire row through a row view: one access check
// for the row, then a straight copy out.
func (m Matrix[T]) GetRow(r int) []T {
	v := m.RowView(r)
	out := make([]T, m.cols)
	v.CopyTo(out)
	v.Release()
	return out
}

// SetRow bulk-writes an entire row through a row view (one write
// check + twin for the row).
func (m Matrix[T]) SetRow(r int, vals []T) {
	if len(vals) != m.cols {
		m.rows[r].n.fatalf("lots: SetRow of %d values into %d columns", len(vals), m.cols)
	}
	v := m.RowViewRW(r)
	v.CopyFrom(vals)
	v.Release()
}

// ---- element codecs -----------------------------------------------------

// elemSize returns the byte size of T.
func elemSize[T Elem]() int {
	var z T
	switch any(z).(type) {
	case byte:
		return 1
	case int32, uint32, float32:
		return 4
	default: // int64, uint64, float64
		return 8
	}
}

func putElem[T Elem](b []byte, v T) {
	switch x := any(v).(type) {
	case byte:
		b[0] = x
	case int32:
		binary.LittleEndian.PutUint32(b, uint32(x))
	case uint32:
		binary.LittleEndian.PutUint32(b, x)
	case float32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(x))
	case int64:
		binary.LittleEndian.PutUint64(b, uint64(x))
	case uint64:
		binary.LittleEndian.PutUint64(b, x)
	case float64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(x))
	}
}

func getElem[T Elem](b []byte) T {
	var z T
	switch any(z).(type) {
	case byte:
		return any(b[0]).(T)
	case int32:
		return any(int32(binary.LittleEndian.Uint32(b))).(T)
	case uint32:
		return any(binary.LittleEndian.Uint32(b)).(T)
	case float32:
		return any(math.Float32frombits(binary.LittleEndian.Uint32(b))).(T)
	case int64:
		return any(int64(binary.LittleEndian.Uint64(b))).(T)
	case uint64:
		return any(binary.LittleEndian.Uint64(b)).(T)
	default:
		return any(math.Float64frombits(binary.LittleEndian.Uint64(b))).(T)
	}
}
