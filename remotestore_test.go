package lots

import (
	"testing"

	"repro/internal/disk"
)

// TestRemoteFallbackCapacitySentinelAware: the wrapper must forward
// the local store's capacity instead of hardwiring 0 — to a
// capacity-aware caller a bounded local store otherwise read as
// "unlimited" (or, treating 0 as a limit, as permanently full).
func TestRemoteFallbackCapacitySentinelAware(t *testing.T) {
	bounded := NewRemoteFallbackStore(disk.NewSimStore(12345), nil, 1)
	if got := bounded.Capacity(); got != 12345 {
		t.Errorf("Capacity over a bounded local store = %d, want 12345", got)
	}
	unlimited := NewRemoteFallbackStore(disk.NewSimStore(0), nil, 1)
	if got := unlimited.Capacity(); got != 0 {
		t.Errorf("Capacity over an unlimited local store = %d, want the 0 sentinel", got)
	}
}

// TestRemoteSwapOverflowsToPeer exercises the full spill path inside
// one process: a node with a tiny local disk must overflow evictions
// to its peer, read them back intact, and report the spills.
func TestRemoteSwapOverflowsToPeer(t *testing.T) {
	const words = 512 // 2 KB per object
	cfg := DefaultConfig(2)
	cfg.DMMSize = 4096
	cfg.Store = func(node int) disk.Store {
		if node == 0 {
			return disk.NewSimStore(3 << 10) // fills after one eviction
		}
		return disk.NewSimStore(0)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		if n.ID() == 0 {
			n.EnableRemoteSwap(1)
		}
		objs := make([]Ptr[int32], 4)
		for i := range objs {
			objs[i] = Alloc[int32](n, words)
		}
		n.Barrier()
		if n.ID() == 0 {
			// Touch every object repeatedly: 4 x 2 KB through a 4 KB DMM
			// area churns evictions; the 3 KB local disk must overflow.
			for pass := 0; pass < 3; pass++ {
				for o, p := range objs {
					for i := 0; i < words; i += 64 {
						p.Set(i, int32(o*10000+pass*100+i))
					}
				}
			}
			for o, p := range objs {
				for i := 0; i < words; i += 64 {
					if got, want := p.Get(i), int32(o*10000+200+i); got != want {
						panic("remote-swapped object corrupted")
					}
				}
			}
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if spills := c.Node(0).RemoteSpills(); spills == 0 {
		t.Error("local disk never overflowed to the peer — spill path not exercised")
	}
	if c.Node(1).RemoteSpills() != 0 {
		t.Error("peer reports spills although it never enabled remote swap")
	}
}
