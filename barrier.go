package lots

import (
	"sort"
	"time"

	"repro/internal/diffing"
	"repro/internal/object"
	"repro/internal/stats/phases"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Barrier protocol (§3.4): LOTS uses a migrating-home, write-invalidate
// protocol for propagating object updates at a barrier. The rationale
// from the paper:
//
//  1. If a single process wrote an object before the barrier, no data
//     moves at all — the home simply migrates to the writer, and the
//     migration is piggybacked on the barrier exit message.
//  2. A home prevents an object's updates from being scattered: after
//     the barrier, a requester sends one message to the home.
//  3. After the barrier all updates are at homes, so other processes
//     invalidate their copies and free the memory, simplifying
//     bookkeeping.
//
// The fixed-home and update-broadcast variants exist for the ablation
// benchmarks.

// TBarrierDiff payloads carry {epoch u32, lockScope u8, objID u64,
// stamped diff}. lockScope=1 marks a home-based lock-release flush
// rather than an epoch reconciliation (only the latter counts against
// barrier expectations).

// barrierMgr is the global barrier state, hosted on node 0.
type barrierMgr struct {
	n int

	arrivedMsgs []wire.Message
	maxArrive   time.Duration // latest simulated arrival this epoch
	writers     map[object.ID]map[int]bool
	lockVers    map[uint16]uint32
	homes       map[object.ID]int // persistent across epochs

	rbMsgs      []wire.Message
	rbMaxArrive time.Duration
}

func newBarrierMgr(n int) *barrierMgr {
	return &barrierMgr{
		n:        n,
		writers:  make(map[object.ID]map[int]bool),
		lockVers: make(map[uint16]uint32),
		homes:    make(map[object.ID]int),
	}
}

// Barrier synchronizes all nodes and reconciles shared memory under the
// mixed coherence protocol.
func (n *Node) Barrier() {
	n.ctr.Barriers.Add(1)

	// Phase 1: arrival, carrying write notices and (for locks this
	// node manages) current lock versions.
	n.mu.Lock()
	epoch := n.epoch
	var writeIDs []object.ID
	n.table.ForEach(func(c *object.Control) {
		if c.WrittenInEpoch {
			writeIDs = append(writeIDs, c.ID)
		}
	})
	sort.Slice(writeIDs, func(i, j int) bool { return writeIDs[i] < writeIDs[j] })
	type lv struct {
		l uint16
		v uint32
	}
	var lockVers []lv
	for l, mg := range n.lmgr {
		lockVers = append(lockVers, lv{l, mg.ver})
	}
	sort.Slice(lockVers, func(i, j int) bool { return lockVers[i].l < lockVers[j].l })
	if len(n.held) != 0 {
		n.mu.Unlock()
		n.fatalf("lots: node %d: barrier reached while holding %d lock(s)", n.id, len(n.held))
	}
	n.mu.Unlock()

	var w wire.Buffer
	w.U32(epoch).Bool(false) // not run-only
	w.U32(uint32(len(writeIDs)))
	for _, id := range writeIDs {
		w.U64(uint64(id))
	}
	w.U32(uint32(len(lockVers)))
	for _, e := range lockVers {
		w.U16(e.l).U32(e.v)
	}
	arriveAt := time.Now()
	btc := n.tr.Begin(trace.BarrierEnter, epoch, 0, wire.TraceCtx{})
	reply := n.rpcT(0, wire.TBarrierArrive, w.Bytes(), btc)
	n.tr.End(btc)
	n.ph.Observe(epoch, phases.BarrierWait, time.Since(arriveAt))
	if reply.Type != wire.TBarrierExit {
		n.fatalf("lots: node %d: barrier reply %v", n.id, reply.Type)
	}
	n.tr.Instant(trace.BarrierExit, epoch, 0, reply.Trace)
	n.processBarrierExit(reply.Payload)
	// Barrier exit is the protocol's consistency point: every diff owed
	// to this home has been applied and versions are settled, so this is
	// where the incremental checkpoint cut is taken.
	n.checkpointAfterBarrier(epoch)
}

// RunBarrier is the event-only barrier of §3.6: it synchronizes
// execution without any memory consistency action. It suits programs
// that guard every access to the same object with the same lock across
// the barrier.
func (n *Node) RunBarrier() {
	n.ctr.Barriers.Add(1)
	n.mu.Lock()
	epoch := n.rbEpoch
	n.rbEpoch++
	n.mu.Unlock()
	var w wire.Buffer
	w.U32(epoch).Bool(true)
	arriveAt := time.Now()
	btc := n.tr.Begin(trace.BarrierEnter, epoch, 1, wire.TraceCtx{})
	reply := n.rpcT(0, wire.TBarrierArrive, w.Bytes(), btc)
	n.tr.End(btc)
	n.ph.Observe(epoch, phases.BarrierWait, time.Since(arriveAt))
	if reply.Type != wire.TBarrierExit {
		n.fatalf("lots: node %d: run-barrier reply %v", n.id, reply.Type)
	}
	n.tr.Instant(trace.BarrierExit, epoch, 1, reply.Trace)
}

// exitOrder is one "send your diff of obj to dest" instruction.
type exitOrder struct {
	obj  object.ID
	dest uint16
}

// serveBarrierArrive runs at the barrier manager (node 0).
func (n *Node) serveBarrierArrive(m wire.Message) {
	r := wire.NewReader(m.Payload)
	_ = r.U32() // epoch (informational; arrivals are inherently per-epoch)
	runOnly := r.Bool()
	bm := n.bmgr

	arr := transport.Arrival(n.prof, m)
	if runOnly {
		n.mu.Lock()
		bm.rbMsgs = append(bm.rbMsgs, m)
		if arr > bm.rbMaxArrive {
			bm.rbMaxArrive = arr
		}
		if len(bm.rbMsgs) < bm.n {
			n.mu.Unlock()
			return
		}
		msgs := bm.rbMsgs
		at := bm.rbMaxArrive
		bm.rbMsgs = nil
		bm.rbMaxArrive = 0
		n.mu.Unlock()
		for _, am := range msgs {
			n.reply(am, wire.TBarrierExit, (&wire.Buffer{}).Bool(true).Bytes(), at)
		}
		return
	}

	nw := int(r.U32())
	writeIDs := make([]object.ID, 0, nw)
	for i := 0; i < nw; i++ {
		writeIDs = append(writeIDs, object.ID(r.U64()))
	}
	nl := int(r.U32())
	type lv struct {
		l uint16
		v uint32
	}
	lvs := make([]lv, 0, nl)
	for i := 0; i < nl; i++ {
		lvs = append(lvs, lv{r.U16(), r.U32()})
	}
	if r.Err() != nil {
		n.fatalf("lots: bad barrier arrival: %v", r.Err())
	}

	n.mu.Lock()
	if arr > bm.maxArrive {
		bm.maxArrive = arr
	}
	from := int(m.From)
	for _, id := range writeIDs {
		ws := bm.writers[id]
		if ws == nil {
			ws = make(map[int]bool)
			bm.writers[id] = ws
		}
		ws[from] = true
	}
	for _, e := range lvs {
		if e.v > bm.lockVers[e.l] {
			bm.lockVers[e.l] = e.v
		}
	}
	bm.arrivedMsgs = append(bm.arrivedMsgs, m)
	if len(bm.arrivedMsgs) < bm.n {
		n.mu.Unlock()
		return
	}

	// Everyone has arrived: decide homes, orders, and expectations.
	type objPlan struct {
		id      object.ID
		newHome int
		writers []int
	}
	objIDs := make([]object.ID, 0, len(bm.writers))
	for id := range bm.writers {
		objIDs = append(objIDs, id)
	}
	sort.Slice(objIDs, func(i, j int) bool { return objIDs[i] < objIDs[j] })

	plans := make([]objPlan, 0, len(objIDs))
	orders := make([][]exitOrder, bm.n)        // per sender node
	expects := make([]map[object.ID]int, bm.n) // per receiver node
	for i := range expects {
		expects[i] = make(map[object.ID]int)
	}
	mode := n.cfg.Protocol.Barrier
	for _, id := range objIDs {
		ws := bm.writers[id]
		writers := make([]int, 0, len(ws))
		for wtr := range ws {
			writers = append(writers, wtr)
		}
		sort.Ints(writers)
		home, ok := bm.homes[id]
		if !ok {
			home = int(uint64(id) % uint64(bm.n))
		}
		newHome := home
		switch mode {
		case BarrierMigratingHome:
			if len(writers) == 1 {
				// Sole writer: migrate the home; no data transfer.
				if writers[0] != home {
					newHome = writers[0]
					n.ctr.HomeMigrates.Add(1)
				} else {
					newHome = home
				}
			} else {
				for _, wtr := range writers {
					if wtr != home {
						orders[wtr] = append(orders[wtr], exitOrder{obj: id, dest: uint16(home)})
						expects[home][id]++
					}
				}
			}
		case BarrierFixedHome:
			for _, wtr := range writers {
				if wtr != home {
					orders[wtr] = append(orders[wtr], exitOrder{obj: id, dest: uint16(home)})
					expects[home][id]++
				}
			}
		case BarrierUpdateBroadcast:
			for _, wtr := range writers {
				for v := 0; v < bm.n; v++ {
					if v == wtr {
						continue
					}
					orders[wtr] = append(orders[wtr], exitOrder{obj: id, dest: uint16(v)})
					expects[v][id]++
				}
			}
		}
		bm.homes[id] = newHome
		plans = append(plans, objPlan{id: id, newHome: newHome, writers: writers})
	}

	lockList := make([]lv, 0, len(bm.lockVers))
	for l, v := range bm.lockVers {
		lockList = append(lockList, lv{l, v})
	}
	sort.Slice(lockList, func(i, j int) bool { return lockList[i].l < lockList[j].l })

	msgs := bm.arrivedMsgs
	exitAt := bm.maxArrive
	bm.arrivedMsgs = nil
	bm.maxArrive = 0
	bm.writers = make(map[object.ID]map[int]bool)
	n.mu.Unlock()

	for _, am := range msgs {
		v := int(am.From)
		var w wire.Buffer
		w.Bool(false) // not run-only
		w.U32(uint32(len(plans)))
		for _, p := range plans {
			w.U64(uint64(p.id)).U16(uint16(p.newHome))
		}
		w.U32(uint32(len(orders[v])))
		for _, o := range orders[v] {
			w.U64(uint64(o.obj)).U16(o.dest)
		}
		exIDs := make([]object.ID, 0, len(expects[v]))
		for id := range expects[v] {
			exIDs = append(exIDs, id)
		}
		sort.Slice(exIDs, func(i, j int) bool { return exIDs[i] < exIDs[j] })
		w.U32(uint32(len(exIDs)))
		for _, id := range exIDs {
			w.U64(uint64(id)).U32(uint32(expects[v][id]))
		}
		w.U32(uint32(len(lockList)))
		for _, e := range lockList {
			w.U16(e.l).U32(e.v)
		}
		n.reply(am, wire.TBarrierExit, w.Bytes(), exitAt)
	}
}

// barrierPlan is one home decision from the barrier manager: object id
// is homed at home for the next epoch.
type barrierPlan struct {
	id   object.ID
	home int
}

// processBarrierExit applies the manager's decisions on this node:
// register expected diffs, send ordered diffs, revalidate leased
// copies with their homes (Config.Leases), wait for incoming diffs,
// then invalidate the non-home copies whose leases did not hold and
// reset epoch bookkeeping.
func (n *Node) processBarrierExit(payload []byte) {
	r := wire.NewReader(payload)
	if r.Bool() { // run-only exit reached a memory barrier: impossible
		n.fatalf("lots: node %d: run-only exit for full barrier", n.id)
	}
	np := int(r.U32())
	plans := make([]barrierPlan, 0, np)
	for i := 0; i < np; i++ {
		plans = append(plans, barrierPlan{object.ID(r.U64()), int(r.U16())})
	}
	no := int(r.U32())
	orders := make([]exitOrder, 0, no)
	for i := 0; i < no; i++ {
		orders = append(orders, exitOrder{object.ID(r.U64()), r.U16()})
	}
	ne := int(r.U32())
	type expectEntry struct {
		id  object.ID
		cnt int
	}
	expects := make([]expectEntry, 0, ne)
	for i := 0; i < ne; i++ {
		expects = append(expects, expectEntry{object.ID(r.U64()), int(r.U32())})
	}
	nl := int(r.U32())
	type lv struct {
		l uint16
		v uint32
	}
	lvs := make([]lv, 0, nl)
	for i := 0; i < nl; i++ {
		lvs = append(lvs, lv{r.U16(), r.U32()})
	}
	if r.Err() != nil {
		n.fatalf("lots: node %d: bad barrier exit: %v", n.id, r.Err())
	}

	// Register expectations, then build diff payloads from our twins.
	n.mu.Lock()
	for _, e := range expects {
		n.pendingDiffs[e.id] += e.cnt
	}
	epoch := n.epoch
	if n.trackVer() {
		// Settle this home's own epoch writes into each surviving
		// object's data version BEFORE revalidation service opens:
		// otherwise a LEASEOK could vouch for a version the home's own
		// writes were about to bump. Incoming diffs bump at apply time
		// and are gated separately via pendingDiffs.
		for _, p := range plans {
			if p.home != n.id {
				continue
			}
			c := n.lookup(p.id)
			n.bumpVerOnSelfWritesLocked(c)
			c.Lease = false // a home holds the master copy, not a lease
		}
	}
	// From here this node may answer epoch-`epoch` lease revalidations
	// (its expectations are registered and its own bumps are settled).
	n.reconEpoch = epoch + 1
	n.cond.Broadcast()
	type diffJob struct {
		dest    int
		payload []byte
		reqID   uint64 // filled by the coalesced fan-out path
	}
	jobs := make([]diffJob, 0, len(orders))
	for _, o := range orders {
		c := n.lookup(o.obj)
		if c.Twin == nil {
			n.mu.Unlock()
			n.fatalf("lots: node %d: ordered to diff object %d without a twin", n.id, o.obj)
		}
		data := n.objData(c)
		// Stamped diffs: each run carries the lock version under which
		// its words were written, so the home merges concurrent
		// writers' diffs newest-wins instead of arrival-order-wins.
		d := diffing.ComputeStamped(data, c.Twin, c.Stamps, epoch)
		n.clock.Advance(n.prof.WordsCost(c.Words()))
		n.ctr.DiffsMade.Add(1)
		n.ctr.DiffBytes.Add(int64(d.Bytes()))
		var w wire.Buffer
		w.U32(epoch).U8(0).U64(uint64(o.obj))
		d.Encode(&w)
		jobs = append(jobs, diffJob{dest: int(o.dest), payload: w.Bytes()})
	}
	n.mu.Unlock()

	// Ship the diffs. On a coalescing endpoint the whole fan-out is
	// deferred first — per-peer runs of diffs pack into single batched
	// datagrams/writes — then flushed once and awaited; the serial
	// request/reply loop below is the classic path. Both orders are
	// equivalent: acks are awaited with a commutative clock merge, and
	// each home applies diffs independently.
	if bs, ok := n.ep.(batchSender); ok && len(jobs) > 1 {
		acks := make([]chan wire.Message, len(jobs))
		n.pending.Lock()
		for i := range jobs {
			id := n.newReqID()
			acks[i] = make(chan wire.Message, 1)
			n.pending.m[id] = acks[i]
			jobs[i].reqID = id
		}
		n.pending.Unlock()
		for _, j := range jobs {
			tc := n.tr.Instant(trace.DiffSend, epoch, uint64(j.dest), wire.TraceCtx{})
			n.deferSendT(bs, j.dest, wire.TBarrierDiff, j.reqID, j.payload, tc)
		}
		if err := bs.Flush(); err != nil && !n.closed.Load() {
			n.fatalf("lots: node %d: flushing barrier diffs: %v", n.id, err)
		}
		for i, ch := range acks {
			reply := <-ch
			if reply.Type == wire.TInvalid {
				n.fatalf("lots: node %d: barrier diff to node %d: endpoint closed", n.id, jobs[i].dest)
			}
			n.clock.MergeTo(transport.Arrival(n.prof, reply))
			if reply.Type != wire.TBarrierDiffAck {
				n.fatalf("lots: node %d: barrier diff rejected: %v", n.id, reply.Type)
			}
		}
	} else {
		for _, j := range jobs {
			tc := n.tr.Instant(trace.DiffSend, epoch, uint64(j.dest), wire.TraceCtx{})
			if reply := n.rpcT(j.dest, wire.TBarrierDiff, j.payload, tc); reply.Type != wire.TBarrierDiffAck {
				n.fatalf("lots: node %d: barrier diff rejected: %v", n.id, reply.Type)
			}
		}
	}

	// Revalidate leased copies with their (new) homes now that our own
	// diffs are on their way: each home answers once its side of the
	// reconciliation has settled the queried object, so a LEASEOK means
	// "your bytes are still mine for the next epoch". Must precede the
	// invalidation pass below, which it exempts copies from.
	leaseKept := n.leaseRevalidate(epoch, plans)

	// Wait for every diff we are owed (as a home, or as a broadcast
	// receiver) to be applied.
	n.mu.Lock()
	for !n.pendingDrainedLocked() {
		n.cond.Wait()
	}

	// Apply home decisions and invalidate non-home copies — except
	// those whose lease held: they stay Clean, fetch-free.
	broadcast := n.cfg.Protocol.Barrier == BarrierUpdateBroadcast
	for _, p := range plans {
		c := n.lookup(p.id)
		c.Home = p.home
		if !broadcast && p.home != n.id {
			if !leaseKept[p.id] {
				n.invalidateLocked(c)
			}
		} else if c.State != object.Invalid {
			c.State = object.Clean
		}
		c.Twin = nil
		c.WrittenInEpoch = false
		c.ScopeLocks = nil
		// Lock knowledge is synchronized below, so per-word stamps of
		// reconciled objects restart clean; this also keeps the next
		// epoch's stamped barrier diffs comparable.
		c.Stamps = nil
		// Deferred lock-scope updates are all pre-barrier (locks cannot
		// span a barrier) and the reconciliation supersedes them; applying
		// them over a post-barrier fetch would resurrect stale values.
		c.PendingDiffs = nil
	}
	// Synchronize lock knowledge: after a barrier every node has seen
	// every update, so grant diffs restart empty (§3.5 bookkeeping).
	for _, e := range lvs {
		if e.v > n.knownVer[e.l] {
			n.knownVer[e.l] = e.v
		}
	}
	for id, ch := range n.chains {
		ch.Truncate(n.knownVer[n.lockFor(id)])
		if ch.Len() == 0 {
			delete(n.chains, id)
		}
	}
	n.epoch++
	n.cond.Broadcast()
	n.mu.Unlock()
}

// lockFor returns an arbitrary lock known to scope id (chains are
// per-object; truncation just needs a consistent version floor).
func (n *Node) lockFor(id object.ID) uint16 {
	for l, s := range n.scope {
		if s[id] {
			return l
		}
	}
	return 0
}

// pendingDrainedLocked reports whether all expected barrier diffs have
// been applied. Caller holds n.mu.
func (n *Node) pendingDrainedLocked() bool {
	for id, cnt := range n.pendingDiffs {
		if cnt == 0 {
			delete(n.pendingDiffs, id)
			continue
		}
		if cnt > 0 {
			return false
		}
	}
	return true
}

// serveBarrierDiff applies an incoming diff: either an epoch
// reconciliation to this home (counted against expectations) or a
// home-based lock-scope flush.
func (n *Node) serveBarrierDiff(m wire.Message) {
	r := wire.NewReader(m.Payload)
	epoch := r.U32()
	applyAt := time.Now()
	defer func() { n.ph.Observe(epoch, phases.DiffApply, time.Since(applyAt)) }()
	dtc := n.tr.Begin(trace.DiffApply, epoch, uint64(m.From), m.Trace)
	defer n.tr.End(dtc)
	lockScope := r.U8() == 1
	id := object.ID(r.U64())
	d, err := diffing.DecodeStampedDiff(r)
	if err != nil {
		n.fatalf("lots: node %d: bad barrier diff: %v", n.id, err)
	}
	lc := n.svcClock(m)
	n.mu.Lock()
	c := n.lookup(id)
	// Epoch reconciliations arrive while every node is inside the
	// barrier (no views open, per the release-before-barrier rule), but
	// a home-based lock-scope flush can land mid-epoch: never write
	// over a span that is mid-mutation under an open RW view, and never
	// write under a lock-free reader's open read view either.
	for c.RWViews > 0 || c.ROViews > 0 {
		n.cond.Wait()
	}
	restore := n.useClock(lc)
	data := n.objData(c)
	// Lease versioning: bump only when the application actually moves
	// bytes. An incoming diff whose words all lose the newest-wins
	// merge (or re-assert values already present) leaves the copy
	// byte-identical, and leased readers must be allowed to keep it.
	var shadow [][]byte
	if n.trackVer() {
		shadow = stampedRunShadow(data, d)
	}
	if _, err := diffing.ApplyStamped(data, c.EnsureStamps(), d, epoch); err != nil {
		restore()
		n.mu.Unlock()
		n.fatalf("lots: node %d: applying barrier diff to %d: %v", n.id, id, err)
	}
	if shadow != nil && stampedRunsChanged(data, d, shadow) {
		c.Ver++
	}
	if n.mapper != nil {
		n.mapper.MarkDirty(c)
	}
	lc.Advance(n.prof.WordsCost(d.Bytes() / object.WordSize))
	restore()
	if int64(lc.Now()) > c.ReconcileNS {
		c.ReconcileNS = int64(lc.Now())
	}
	// The application cannot leave its barrier before this diff has
	// been applied, so its timeline merges forward here.
	n.clock.MergeTo(lc.Now())
	if !lockScope {
		n.pendingDiffs[id]--
		n.cond.Broadcast()
	}
	n.mu.Unlock()
	n.reply(m, wire.TBarrierDiffAck, nil, lc.Now())
}

// Epoch returns the node's barrier epoch (testing/diagnostics).
func (n *Node) Epoch() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}
