package lots

import (
	"fmt"
	"strings"
	"testing"
)

// View lifetime and semantics tests: the zero-copy span API must honor
// the same coherence protocol as element-wise access while adding pin
// lifetime, mutation-window, and misuse-detection behaviour of its own.

func TestViewBasicReadWrite(t *testing.T) {
	c, err := NewCluster(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		a := Alloc[int32](n, 64)
		w := a.ViewRW(0, 64)
		if w.Len() != 64 || !w.RW() {
			panic(fmt.Sprintf("ViewRW: len %d rw %v", w.Len(), w.RW()))
		}
		for i := 0; i < 64; i++ {
			w.Set(i, int32(i*3))
		}
		w.Release()
		// Element-wise reads see the view's writes.
		for i := 0; i < 64; i++ {
			if got := a.Get(i); got != int32(i*3) {
				panic(fmt.Sprintf("a[%d] = %d after view writes", i, got))
			}
		}
		// Read view over a sub-span, with pointer-arithmetic base.
		r := a.Add(8).View(8, 16) // elements 16..31
		for k := 0; k < 16; k++ {
			if got := r.At(k); got != int32((16+k)*3) {
				panic(fmt.Sprintf("view at %d = %d", k, got))
			}
		}
		// CopyTo / CopyFrom round trip.
		buf := make([]int32, 16)
		if m := r.CopyTo(buf); m != 16 {
			panic(fmt.Sprintf("CopyTo copied %d", m))
		}
		r.Release()
		w2 := a.ViewRW(0, 16)
		if m := w2.CopyFrom(buf); m != 16 {
			panic(fmt.Sprintf("CopyFrom copied %d", m))
		}
		w2.Release()
		if got := a.Get(0); got != int32(16*3) {
			panic(fmt.Sprintf("a[0] = %d after CopyFrom", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestViewSliceSharesPinAndRelease(t *testing.T) {
	c, err := NewCluster(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		a := Alloc[int32](n, 32)
		w := a.ViewRW(0, 32)
		s := w.Slice(8, 16)
		if s.Len() != 8 {
			panic(fmt.Sprintf("slice len %d", s.Len()))
		}
		s.Set(0, 99) // element 8 of the parent
		if got := w.At(8); got != 99 {
			panic(fmt.Sprintf("parent sees %d through slice write", got))
		}
		s.Release() // releasing the alias releases the span once
		if got := a.Get(8); got != 99 {
			panic(fmt.Sprintf("a[8] = %d", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestViewRWReleasedOutsideCriticalSection is the lifetime edge case
// the API documents as legal: the lock release computes diffs from the
// bytes already written, so the view's Release may trail the critical
// section — the writes still propagate with the lock grant.
func TestViewRWReleasedOutsideCriticalSection(t *testing.T) {
	c, err := NewCluster(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		a := Alloc[int32](n, 64)
		n.Barrier()
		if n.ID() == 0 {
			n.Acquire(1)
			v := a.ViewRW(0, 64)
			for i := 0; i < 64; i++ {
				v.Set(i, int32(100+i))
			}
			n.Release(1) // leave the CS first...
			v.Release()  // ...then release the view
		}
		n.RunBarrier() // order node 1's acquire after node 0's release
		if n.ID() == 1 {
			n.Acquire(1)
			for i := 0; i < 64; i++ {
				if got := a.Get(i); got != int32(100+i) {
					panic(fmt.Sprintf("node 1 sees a[%d] = %d; view writes lost", i, got))
				}
			}
			n.Release(1)
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestViewWritesPropagateAtBarrier: writes made through an RW view are
// reconciled by the barrier protocol exactly like Set writes (twin +
// diff machinery is shared).
func TestViewWritesPropagateAtBarrier(t *testing.T) {
	c, err := NewCluster(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		a := Alloc[int32](n, 32)
		n.Barrier()
		if n.ID() == 0 {
			v := a.ViewRW(0, 32)
			for i := 0; i < 32; i++ {
				v.Set(i, int32(7*i))
			}
			v.Release()
		}
		n.Barrier() // sole writer: home migrates, node 1 invalidates
		for i := 0; i < 32; i++ {
			if got := a.Get(i); got != int32(7*i) {
				panic(fmt.Sprintf("node %d sees a[%d] = %d", n.ID(), i, got))
			}
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestViewPinBlocksEvictionUnderAllocStorm holds a view on a hot object
// while an allocation storm churns several DMM areas' worth of cold
// objects through the arena: the pin must hold the hot object resident
// (its mapped bytes stay valid) while the storm evicts around it.
func TestViewPinBlocksEvictionUnderAllocStorm(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.DMMSize = 64 << 10
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		hot := Alloc[int32](n, 4096) // 16 KB of the 64 KB arena
		v := hot.ViewRW(0, 4096)
		for i := 0; i < 4096; i++ {
			v.Set(i, int32(i^0x5a))
		}
		// Storm: 8 KB objects totalling 4x the arena, each touched so it
		// maps in and forces evictions.
		for k := 0; k < 32; k++ {
			p := Alloc[int32](n, 2048)
			p.Set(0, int32(k))
		}
		// The hot object's mapped bytes must still be ours: if the pin
		// had been ignored, the arena bytes under the view would now
		// belong to a cold object.
		for i := 0; i < 4096; i++ {
			if got := v.At(i); got != int32(i^0x5a) {
				panic(fmt.Sprintf("hot[%d] = %d mid-storm; pinned object was evicted", i, got))
			}
		}
		v.Release()
		for i := 0; i < 4096; i++ {
			if got := hot.Get(i); got != int32(i^0x5a) {
				panic(fmt.Sprintf("hot[%d] = %d after release", i, got))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	total := c.Total()
	if total.SwapOuts == 0 {
		t.Error("alloc storm evicted nothing; the test exerted no pressure")
	}
	if total.PinDenls == 0 {
		t.Error("no pin denials counted; eviction never considered the pinned object")
	}
}

// TestFetchNeverTornByOpenRWView: a peer's fetch that lands inside an
// RW view's mutation window must be deferred until Release, so the
// served copy is always a post-window snapshot, never a torn mixture
// (and, under -race, never a byte-level data race). Channels pin the
// schedule: the peer's fetch is issued only once the home's mutation
// window is provably open.
func TestFetchNeverTornByOpenRWView(t *testing.T) {
	const words, sweeps = 2048, 6
	c, err := NewCluster(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	viewOpen := make(chan struct{})
	fetching := make(chan struct{})
	var got []int32 // node 1's fetched snapshot, asserted after Run
	err = c.Run(func(n *Node) {
		a := Alloc[int32](n, words)
		n.Barrier()
		if n.ID() == 0 {
			a.Set(0, 0)
		}
		n.Barrier() // home -> node 0; node 1 invalid, must fetch
		if n.ID() == 0 {
			v := a.ViewRW(0, words)
			for i := 0; i < words; i++ {
				v.Set(i, 1)
			}
			close(viewOpen)
			<-fetching
			for sweep := 2; sweep <= sweeps; sweep++ {
				for i := 0; i < words; i++ {
					v.Set(i, int32(sweep))
				}
			}
			v.Release() // closes the window; the parked fetch may now serve
		} else {
			<-viewOpen
			close(fetching)
			got = a.GetN(0, words) // fetches from node 0 mid-window
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < words; i++ {
		if got[i] != got[0] {
			t.Fatalf("torn fetch: a[0]=%d but a[%d]=%d", got[0], i, got[i])
		}
	}
	if got[0] != sweeps {
		t.Fatalf("fetch served mid-window: saw %d, want %d", got[0], sweeps)
	}
}

// TestGrantNeverTornByOpenRWView: the homeless grant path reads object
// bytes on a serve goroutine; like fetch service, it must defer while
// the object is mid-mutation under an open RW view, so a grant diff is
// always a post-window snapshot, never a torn mixture (nor, under
// -race, a byte-level data race with the view's lock-free writes). The
// test pins the schedule with channels: the peer's acquire is issued
// only once the writer's post-CS mutation window is provably open, so
// without the gate the grant read and the view writes always overlap.
func TestGrantNeverTornByOpenRWView(t *testing.T) {
	const words, sweeps = 2048, 6
	c, err := NewCluster(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	viewOpen := make(chan struct{})
	acquiring := make(chan struct{})
	var got []int32 // node 1's in-CS snapshot, asserted after Run
	err = c.Run(func(n *Node) {
		a := Alloc[int32](n, words)
		n.Barrier()
		if n.ID() == 0 {
			// Stamp every word under the lock so the next grant for it
			// must carry the whole span.
			n.Acquire(2)
			w := a.ViewRW(0, words)
			for i := 0; i < words; i++ {
				w.Set(i, 1)
			}
			w.Release()
			n.Release(2)
			// Open a post-CS mutation window and only then let the peer
			// acquire: its grant request lands while this span is
			// provably mid-mutation.
			v := a.ViewRW(0, words)
			close(viewOpen)
			<-acquiring
			for sweep := 2; sweep <= sweeps; sweep++ {
				for i := 0; i < words; i++ {
					v.Set(i, int32(sweep))
				}
			}
			v.Release() // closes the window; the parked grant may now read
		} else {
			<-viewOpen
			close(acquiring)
			n.Acquire(2)
			got = a.GetN(0, words)
			n.Release(2)
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < words; i++ {
		if got[i] != got[0] {
			t.Fatalf("torn grant: a[0]=%d but a[%d]=%d", got[0], i, got[i])
		}
	}
	// The grant must have been served after the mutation window closed,
	// so the snapshot is the final sweep's value.
	if got[0] != sweeps {
		t.Fatalf("grant served mid-window: saw %d, want %d", got[0], sweeps)
	}
}

// TestReadViewNotTornByHomeBasedFlush: under the home-based lock
// ablation, a release flushes diffs to the object's home mid-epoch on
// a serve goroutine. That write must defer while the home holds ANY
// open view — including a read-only one — so a lock-free reader never
// observes a torn update.
func TestReadViewNotTornByHomeBasedFlush(t *testing.T) {
	const words = 2048
	cfg := DefaultConfig(2)
	cfg.Protocol.Lock = LockHomeBased
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	viewOpen := make(chan struct{})
	releasing := make(chan struct{})
	flushed := make(chan struct{})
	var fail string // set by node 0, checked after Run
	err = c.Run(func(n *Node) {
		_ = Alloc[int32](n, 4) // ID 1, homed at node 1
		a := Alloc[int32](n, words)
		// a is object ID 2: homed at node 0, which will hold the view.
		n.Barrier()
		if n.ID() == 1 {
			<-viewOpen
			n.Acquire(3) // manager: node 1
			for i := 0; i < words; i++ {
				a.Set(i, 5)
			}
			close(releasing)
			n.Release(3) // home-based flush to node 0 blocks on the ack
			close(flushed)
		} else {
			v := a.View(0, words)
			close(viewOpen)
			<-releasing
			// The peer's flush is in flight; sweep the open view — every
			// read must still see the pre-flush zeros.
			for sweep := 0; sweep < 4; sweep++ {
				for i := 0; i < words; i++ {
					if got := v.At(i); got != 0 {
						fail = fmt.Sprintf("read view saw flushed value %d at [%d]", got, i)
						break
					}
				}
			}
			v.Release() // window closes; the parked flush applies
			<-flushed
			if got := a.Get(0); got != 5 {
				fail = fmt.Sprintf("flush lost: a[0] = %d after release", got)
			}
		}
		n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fail != "" {
		t.Fatal(fail)
	}
}

// runExpectError runs fn on a single-node cluster and asserts the
// runtime aborts with an error mentioning want.
func runExpectError(t *testing.T, want string, fn func(n *Node)) {
	t.Helper()
	c, err := NewCluster(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(fn)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("Run error = %v, want mention of %q", err, want)
	}
}

func TestViewOutOfBounds(t *testing.T) {
	runExpectError(t, "out of bounds", func(n *Node) {
		a := Alloc[int32](n, 16)
		a.View(4, 13) // [4,17) over 16 elements
	})
	runExpectError(t, "out of bounds", func(n *Node) {
		a := Alloc[int32](n, 16)
		a.ViewRW(-1, 4)
	})
	runExpectError(t, "out of bounds", func(n *Node) {
		a := Alloc[int32](n, 16)
		a.Add(8).View(8, 1) // pointer arithmetic past the end
	})
}

func TestViewDoubleReleaseFails(t *testing.T) {
	runExpectError(t, "double Release", func(n *Node) {
		a := Alloc[int32](n, 8)
		v := a.View(0, 8)
		v.Release()
		v.Release()
	})
	// Releasing a Slice alias after the parent is the same double free.
	runExpectError(t, "double Release", func(n *Node) {
		a := Alloc[int32](n, 8)
		v := a.ViewRW(0, 8)
		s := v.Slice(0, 4)
		v.Release()
		s.Release()
	})
}

func TestViewUseAfterReleaseFails(t *testing.T) {
	runExpectError(t, "released view", func(n *Node) {
		a := Alloc[int32](n, 8)
		v := a.View(0, 8)
		v.Release()
		v.At(0)
	})
}

func TestViewWriteThroughReadOnlyFails(t *testing.T) {
	runExpectError(t, "read-only view", func(n *Node) {
		a := Alloc[int32](n, 8)
		v := a.View(0, 8)
		defer v.Release()
		v.Set(0, 1)
	})
	runExpectError(t, "read-only view", func(n *Node) {
		a := Alloc[int32](n, 8)
		v := a.View(0, 8)
		defer v.Release()
		v.CopyFrom([]int32{1})
	})
}

// TestRunJoinsAllNodeErrors: a multi-node failure must surface every
// node's panic, not just the lowest-ranked one.
func TestRunJoinsAllNodeErrors(t *testing.T) {
	c, err := NewCluster(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(n *Node) {
		switch n.ID() {
		case 1:
			panic("boom-one")
		case 2:
			panic("boom-two")
		}
	})
	if err == nil {
		t.Fatal("Run returned nil for panicking nodes")
	}
	for _, want := range []string{"node 1", "boom-one", "node 2", "boom-two"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}
