package lots

import (
	"crypto/tls"
	"fmt"
	"net"

	"repro/internal/disk"
	"repro/internal/platform"
	"repro/internal/transport"
)

// LockMode selects the coherence protocol used for lock-synchronized
// updates (§3.4 mixed protocol, plus the pure-home-based ablation).
type LockMode uint8

const (
	// LockHomeless is the paper's choice: a homeless write-update
	// protocol; updates travel with the lock grant.
	LockHomeless LockMode = iota
	// LockHomeBased is the ablation variant: releases flush diffs to
	// the object's home, and grants carry invalidations, like JIAJIA.
	LockHomeBased
)

// BarrierMode selects the coherence protocol used at barriers.
type BarrierMode uint8

const (
	// BarrierMigratingHome is the paper's choice: single-writer objects
	// migrate their home to the writer with no data transfer;
	// multi-writer objects send diffs to the (fixed) home; all
	// non-home copies are invalidated.
	BarrierMigratingHome BarrierMode = iota
	// BarrierFixedHome is the ablation variant: homes never migrate;
	// every writer (even a sole writer) must ship diffs to the home.
	BarrierFixedHome
	// BarrierUpdateBroadcast is the pure write-update ablation: every
	// writer broadcasts its diffs to all nodes at the barrier — the
	// all-to-all traffic the paper argues against.
	BarrierUpdateBroadcast
)

// DiffMode selects how lock-scope updates are represented.
type DiffMode uint8

const (
	// DiffPerFieldStamps is the paper's scheme (§3.5, Figure 7b):
	// per-word timestamps allow on-demand diffs with no redundancy.
	DiffPerFieldStamps DiffMode = iota
	// DiffAccumulate reproduces the TreadMarks-style accumulated diff
	// chains (Figure 7a) for the diff-accumulation ablation.
	DiffAccumulate
)

// EvictMode selects the DMM-area victim policy.
type EvictMode uint8

const (
	// EvictLRU is the paper's policy: least-recently-used unpinned
	// object, via per-object access timestamps (§3.3).
	EvictLRU EvictMode = iota
	// EvictFIFO is the ablation policy: oldest-mapped unpinned object.
	EvictFIFO
)

// Protocol bundles the coherence-protocol knobs. The zero value is the
// configuration the paper evaluates.
type Protocol struct {
	Lock    LockMode
	Barrier BarrierMode
	Diff    DiffMode
	Evict   EvictMode
}

// TransportKind selects the cluster interconnect.
type TransportKind uint8

const (
	// TransportMem is the in-process interconnect with deterministic
	// simulated-time accounting (the default; the only choice for the
	// benchmark harness).
	TransportMem TransportKind = iota
	// TransportUDP runs nodes over real UDP sockets with the paper's
	// sliding-window flow control (§3.6).
	TransportUDP
	// TransportTCP runs nodes over persistent TCP connections with
	// length-prefixed framing and reconnect-on-failure.
	TransportTCP
)

func (k TransportKind) String() string {
	switch k {
	case TransportMem:
		return "mem"
	case TransportUDP:
		return "udp"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", uint8(k))
	}
}

// Chaos configures seeded fault injection for the interconnect; see
// Config.Chaos. Aliased from the transport package so importers of
// this package can construct it without reaching into internal/.
type Chaos = transport.Chaos

// ChaosStats counts the faults a Chaos configuration injected.
type ChaosStats = transport.ChaosStats

// DefaultChaos returns a hostile-but-recoverable fault profile with a
// reproducible schedule derived from seed.
func DefaultChaos(seed int64) Chaos { return transport.DefaultChaos(seed) }

// RankChaosSeed derives rank's fault-schedule seed from a cluster-wide
// one. In-process clusters share one Chaos value, but a multi-process
// deployment builds each rank's endpoint in its own process: giving
// every rank the same seed would correlate their schedules in ways a
// single-process run never sees (each side of a link drawing the SAME
// pseudo-random drops). The golden-ratio mix keeps the per-rank
// schedules deterministic from one launcher seed yet decorrelated —
// the convention every multi-process component (cmd/lotsnode,
// cmd/lotslaunch, the multiproc harness) agrees on.
func RankChaosSeed(seed int64, rank int) int64 {
	return seed ^ int64(rank)*0x9E3779B9
}

// SelfSignedTLS generates an in-memory self-signed certificate pair
// shared by every node of one cluster, ready for Config.TLS: the TCP
// listeners serve it and the dialers trust exactly it. Test- and
// smoke-grade; production clusters supply their own PKI material.
func SelfSignedTLS() (*tls.Config, error) { return transport.SelfSignedTLS() }

// Config describes a LOTS cluster.
type Config struct {
	// Nodes is the cluster size (the paper supports up to 256
	// processes).
	Nodes int

	// DMMSize is the per-node dynamic memory mapping area in bytes.
	// The paper's implementation uses 512 MB; tests use much smaller
	// areas so swapping is exercised at laptop scale.
	DMMSize int

	// LargeObjectSpace enables the dynamic memory mapping mechanism
	// and the pinning machinery. Setting it to false yields LOTS-x,
	// the variant the paper benchmarks to isolate the large-object-
	// space overhead (§4.1, §4.2): objects then live permanently in
	// process memory and the DMM area is unused.
	LargeObjectSpace bool

	// Platform is the simulated hardware/OS cost profile.
	Platform platform.Profile

	// Store builds each node's backing store. Nil defaults to an
	// in-memory simulated disk bounded by Platform.DiskFreeBytes.
	Store func(node int) disk.Store

	// Protocol holds coherence ablation knobs; the zero value is the
	// paper's mixed protocol.
	Protocol Protocol

	// MaxLocks bounds the lock ID space (paper exports a fixed lock
	// set; JIAJIA-era systems commonly allow a few hundred).
	MaxLocks int

	// Transport selects the interconnect; the zero value is the
	// in-memory transport.
	Transport TransportKind

	// Addrs lists one socket address per node for the UDP and TCP
	// transports. Nil requests kernel-assigned loopback ports.
	Addrs []string

	// UDPWindow bounds the in-flight unacknowledged fragments per UDP
	// peer channel (and the receiver's out-of-order buffer). Zero uses
	// the transport default (32).
	UDPWindow int

	// Chaos, when non-nil, injects seeded faults (drop, duplication,
	// reordering, delay, transient partitions) into the interconnect:
	// datagram-level for UDP, connection kills plus message-level for
	// TCP, message-level for mem. The protocol must still produce
	// byte-identical results; see the conformance suite.
	Chaos *Chaos

	// TLS, when non-nil, encrypts every TCP link: listeners serve the
	// config's certificates and dials verify against its root pool.
	// One config serves both roles, so it needs Certificates plus
	// RootCAs/ServerName (transport.SelfSignedTLS builds a
	// test-grade pair). Only valid with TransportTCP.
	TLS *tls.Config

	// Leases enables the read-mostly lease coherence extension: homes
	// version object data, grant bounded read leases with fetch
	// replies, and at barrier time cachers revalidate leased copies
	// with a batched version check instead of blindly invalidating. A
	// copy whose bytes the home never changed stays valid with zero
	// data transfer. Off by default (the paper's protocol).
	Leases bool

	// LeaseSlots bounds the per-home lease table (entries are
	// object x cacher pairs). When the table is full the oldest lease
	// is evicted; an evicted cacher's next revalidation simply
	// demotes to a fetch. Zero uses DefaultLeaseSlots.
	LeaseSlots int

	// Coalesce enables frame coalescing: a node's burst of protocol
	// messages to one peer within a barrier round (its fan-out of
	// reconciliation diffs) is packed into a single batched
	// datagram/write instead of one per message, flushed at the round
	// end or when the batch nears the single-fragment budget. Final
	// shared state is byte-identical with or without it (see the
	// conformance suite); only the datagram/write count changes. Off by
	// default.
	Coalesce bool

	// Recovery, when non-nil, enables the checkpoint/recovery
	// subsystem: every rank writes an incremental checkpoint of its
	// homed objects at each barrier exit (and pushes it to a buddy
	// rank), and a gang-restarted fleet can resume from the newest
	// commonly restorable epoch instead of re-running from scratch.
	// Enabling recovery also turns on the data-version maintenance the
	// lease extension uses, so unchanged objects cost zero checkpoint
	// bytes. Nil by default (the paper's protocol).
	Recovery *RecoveryOpts

	// Trace enables causal protocol tracing (internal/trace): each
	// node records timestamped protocol events into a bounded ring and
	// stamps outgoing request frames with a compact trace context so
	// spans link causally across ranks. Tracing records wall-clock
	// time only — it never touches the simulated clock, and final
	// shared state is byte-identical with tracing on or off (asserted
	// by `lotsbench -exp tracecost`). The ring doubles as the crash
	// flight recorder cmd/lotsnode dumps on failure. Off by default.
	Trace bool
}

// RecoveryOpts configures the checkpoint/recovery subsystem.
type RecoveryOpts struct {
	// Root is the checkpoint directory root. Each rank keeps its store
	// under Root/rank-<identity>; in a multi-machine deployment the
	// roots live on different disks and only the per-rank subdirectory
	// is used, so sharing one path string is safe either way.
	Root string

	// Buddy replicates every checkpoint increment to rank
	// (id+1) mod Nodes over the DSM transport, making recovery survive
	// the total loss of a rank's checkpoint directory. On by default in
	// DefaultRecovery; meaningless (and skipped) for 1-node clusters.
	Buddy bool

	// Resume marks this process as a restarted rank: the application
	// must call Node.Recover after its allocation prologue, which
	// negotiates a common restore epoch through rank 0, restores state,
	// and returns the epoch to resume at. cmd/lotsnode sets it for
	// -recover.
	Resume bool

	// RankMap, when non-nil, maps each rank of this cluster to the
	// identity (old rank number) whose checkpoint chain it owns — used
	// to continue degraded with N-1 ranks after a death: the surviving
	// identities keep their chains and the dead rank's objects are
	// re-homed from whichever store replicated them. Nil means rank i
	// has identity i. Must have exactly Nodes entries, distinct, each
	// in 0..OldNodes-1.
	RankMap []int

	// OldNodes is the cluster size the checkpoints being restored were
	// written with (>= Nodes). Zero means Nodes — a same-size restart.
	OldNodes int
}

// MaxNodes is the cluster-size bound; LOTS is designed to support up to
// 256 processes (§5).
const MaxNodes = 256

// DefaultDMMSize is the test-scale DMM area (the paper uses 512 MB).
const DefaultDMMSize = 4 << 20

// DefaultMaxLocks is the default lock ID space.
const DefaultMaxLocks = 1024

// DefaultLeaseSlots is the default per-home lease table bound.
const DefaultLeaseSlots = 4096

// DefaultConfig returns the paper's configuration at test scale for a
// cluster of n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:            n,
		DMMSize:          DefaultDMMSize,
		LargeObjectSpace: true,
		Platform:         platform.Test(),
		MaxLocks:         DefaultMaxLocks,
	}
}

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	if c.Nodes < 1 || c.Nodes > MaxNodes {
		return fmt.Errorf("lots: Nodes = %d, want 1..%d", c.Nodes, MaxNodes)
	}
	if c.DMMSize == 0 {
		c.DMMSize = DefaultDMMSize
	}
	if c.DMMSize < 4096 {
		return fmt.Errorf("lots: DMMSize = %d, want >= 4096", c.DMMSize)
	}
	if c.MaxLocks == 0 {
		c.MaxLocks = DefaultMaxLocks
	}
	if c.MaxLocks < 1 || c.MaxLocks > 1<<15 {
		return fmt.Errorf("lots: MaxLocks = %d, want 1..32768", c.MaxLocks)
	}
	if c.Platform.Name == "" {
		c.Platform = platform.Test()
	}
	if c.Transport > TransportTCP {
		return fmt.Errorf("lots: unknown transport %d", c.Transport)
	}
	if c.Transport != TransportMem && c.Addrs != nil {
		if len(c.Addrs) != c.Nodes {
			return fmt.Errorf("lots: %d addrs for %d nodes", len(c.Addrs), c.Nodes)
		}
		// Two nodes on one socket address can never both bind; reject
		// the typo here rather than as a cryptic bind failure. Addresses
		// requesting a kernel-assigned port (":0") are exempt — they are
		// legitimately repeated and resolve to distinct ports.
		seen := make(map[string]int, len(c.Addrs))
		for i, a := range c.Addrs {
			if _, port, err := net.SplitHostPort(a); err == nil && port == "0" {
				continue
			}
			if j, dup := seen[a]; dup {
				return fmt.Errorf("lots: duplicate addr %q for nodes %d and %d", a, j, i)
			}
			seen[a] = i
		}
	}
	if c.UDPWindow < 0 || c.UDPWindow > 1<<16 {
		return fmt.Errorf("lots: UDPWindow = %d, want 0..65536", c.UDPWindow)
	}
	if c.TLS != nil && c.Transport != TransportTCP {
		return fmt.Errorf("lots: TLS requires the TCP transport, got %v", c.Transport)
	}
	if c.LeaseSlots == 0 {
		c.LeaseSlots = DefaultLeaseSlots
	}
	if c.LeaseSlots < 1 {
		return fmt.Errorf("lots: LeaseSlots = %d, want >= 1", c.LeaseSlots)
	}
	if r := c.Recovery; r != nil {
		if r.Root == "" {
			return fmt.Errorf("lots: Recovery.Root must be set")
		}
		if r.OldNodes == 0 {
			r.OldNodes = c.Nodes
		}
		if r.OldNodes < c.Nodes {
			return fmt.Errorf("lots: Recovery.OldNodes = %d < Nodes = %d", r.OldNodes, c.Nodes)
		}
		if r.RankMap != nil {
			if len(r.RankMap) != c.Nodes {
				return fmt.Errorf("lots: Recovery.RankMap has %d entries for %d nodes", len(r.RankMap), c.Nodes)
			}
			seen := make(map[int]bool, len(r.RankMap))
			for i, old := range r.RankMap {
				if old < 0 || old >= r.OldNodes {
					return fmt.Errorf("lots: Recovery.RankMap[%d] = %d, want 0..%d", i, old, r.OldNodes-1)
				}
				if seen[old] {
					return fmt.Errorf("lots: Recovery.RankMap assigns identity %d twice", old)
				}
				seen[old] = true
			}
		} else if r.OldNodes != c.Nodes {
			return fmt.Errorf("lots: Recovery.OldNodes = %d != Nodes = %d requires RankMap", r.OldNodes, c.Nodes)
		}
	}
	return nil
}

// DefaultRecovery returns the standard recovery configuration: durable
// checkpoints under root with buddy replication.
func DefaultRecovery(root string) *RecoveryOpts {
	return &RecoveryOpts{Root: root, Buddy: true}
}
